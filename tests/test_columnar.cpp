// Columnar sink round-trips: the hard contract is that decoding a .col
// stream back to CSV (or JSONL) is byte-identical to having written the
// text format directly — for synthetic rows with every escaping edge case,
// for real sweep rows and for real campaign rows, at any chunk size.
#include "service/columnar.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "reliability/campaign.hpp"
#include "report/sink.hpp"
#include "runner/sweep_runner.hpp"
#include "service/wire.hpp"

namespace laec::service {
namespace {

using Rows = std::vector<std::vector<std::string>>;

const std::vector<std::string> kHeaders = {"name", "value", "note"};

/// Rows exercising every CsvWriter escaping path: commas, quotes,
/// embedded newlines, empty fields, UTF-8, leading zeros, u64 extremes.
Rows tricky_rows() {
  return {
      {"plain", "42", "no escaping"},
      {"comma,inside", "0", ""},
      {"quote\"inside", "18446744073709551615", "max u64"},
      {"line\nbreak", "18446744073709551616", "one past max"},
      {"", "007", "leading zeros stay text"},
      {"unicode \xc3\xa9\xe2\x82\xac", "-3", "negatives stay text"},
      {"both\",\nat once", "1e3", "exponent stays text"},
  };
}

std::string csv_of(const std::vector<std::string>& headers, const Rows& rows) {
  std::ostringstream out;
  report::CsvWriter w(out);
  w.begin(headers);
  for (const auto& r : rows) w.row(r);
  w.end();
  return out.str();
}

std::string jsonl_of(const std::vector<std::string>& headers,
                     const Rows& rows) {
  std::ostringstream out;
  report::JsonLinesWriter w(out);
  w.begin(headers);
  for (const auto& r : rows) w.row(r);
  w.end();
  return out.str();
}

std::string col_of(const std::vector<std::string>& headers, const Rows& rows,
                   std::size_t chunk_rows = ColumnarWriter::kDefaultChunkRows) {
  std::ostringstream out;
  ColumnarWriter w(out, chunk_rows);
  w.begin(headers);
  for (const auto& r : rows) w.row(r);
  w.end();
  return out.str();
}

std::string decode_to_csv(const std::string& col, u64* rows_out = nullptr) {
  std::istringstream in(col);
  std::ostringstream out;
  report::CsvWriter w(out);
  const u64 n = read_columnar(in, w);
  w.end();
  if (rows_out != nullptr) *rows_out = n;
  return out.str();
}

TEST(Columnar, CanonicalU64Predicate) {
  EXPECT_TRUE(is_canonical_u64("0"));
  EXPECT_TRUE(is_canonical_u64("7"));
  EXPECT_TRUE(is_canonical_u64("18446744073709551615"));
  EXPECT_FALSE(is_canonical_u64(""));
  EXPECT_FALSE(is_canonical_u64("007"));
  EXPECT_FALSE(is_canonical_u64("00"));
  EXPECT_FALSE(is_canonical_u64("-3"));
  EXPECT_FALSE(is_canonical_u64("1e3"));
  EXPECT_FALSE(is_canonical_u64("42 "));
  EXPECT_FALSE(is_canonical_u64("18446744073709551616"));  // max + 1
  EXPECT_FALSE(is_canonical_u64("99999999999999999999"));  // 20 digits, over
  EXPECT_FALSE(is_canonical_u64("184467440737095516150"));  // 21 digits
}

TEST(Columnar, RoundTripsTrickyRowsToCsvByteIdentically) {
  const Rows rows = tricky_rows();
  u64 decoded = 0;
  EXPECT_EQ(decode_to_csv(col_of(kHeaders, rows), &decoded),
            csv_of(kHeaders, rows));
  EXPECT_EQ(decoded, rows.size());
}

TEST(Columnar, RoundTripsToJsonlByteIdentically) {
  const Rows rows = tricky_rows();
  std::istringstream in(col_of(kHeaders, rows));
  std::ostringstream out;
  report::JsonLinesWriter w(out);
  (void)read_columnar(in, w);
  w.end();
  EXPECT_EQ(out.str(), jsonl_of(kHeaders, rows));
}

TEST(Columnar, ChunkBoundariesDoNotChangeTheDecode) {
  // 10 rows across chunk sizes 1, 3, 4, 1000: every split decodes to the
  // same CSV (the chunking is an encoding detail, not a row boundary).
  Rows rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({"row" + std::to_string(i), std::to_string(i * 1000),
                    i % 2 == 0 ? "even" : "odd,\"quoted\""});
  }
  const std::string want = csv_of(kHeaders, rows);
  for (const std::size_t chunk : {1u, 3u, 4u, 1000u}) {
    EXPECT_EQ(decode_to_csv(col_of(kHeaders, rows, chunk)), want)
        << "chunk_rows=" << chunk;
  }
}

TEST(Columnar, EmptyTableRoundTrips) {
  const Rows none;
  u64 decoded = 99;
  EXPECT_EQ(decode_to_csv(col_of(kHeaders, none), &decoded),
            csv_of(kHeaders, none));
  EXPECT_EQ(decoded, 0u);
}

TEST(Columnar, MixedNumericAndDictColumnsPerChunk) {
  // First chunk all-canonical in column 1 (fixed-width), second chunk has
  // a non-canonical cell (dictionary) — decode must be identical anyway.
  Rows rows;
  for (int i = 0; i < 4; ++i) rows.push_back({"a", std::to_string(i), "x"});
  rows.push_back({"a", "007", "x"});
  EXPECT_EQ(decode_to_csv(col_of(kHeaders, rows, 4)), csv_of(kHeaders, rows));
}

TEST(Columnar, CsvToRowsIsTheExactInverseOfCsvWriter) {
  const Rows rows = tricky_rows();
  const std::string csv = csv_of(kHeaders, rows);
  std::istringstream in(csv);
  std::ostringstream out;
  report::CsvWriter w(out);
  const u64 n = csv_to_rows(in, w);
  w.end();
  EXPECT_EQ(out.str(), csv);
  EXPECT_EQ(n, rows.size());
}

TEST(Columnar, CsvToRowsFeedsColumnarIdenticallyToDirectWrites) {
  // The multi-process merge path: CSV text -> csv_to_rows -> ColumnarWriter
  // must produce the same bytes as writing the rows to ColumnarWriter
  // directly (this is what makes --procs=N --format=col deterministic).
  const Rows rows = tricky_rows();
  std::istringstream in(csv_of(kHeaders, rows));
  std::ostringstream out;
  ColumnarWriter w(out);
  (void)csv_to_rows(in, w);
  w.end();
  EXPECT_EQ(out.str(), col_of(kHeaders, rows));
}

TEST(Columnar, CsvToRowsRejectsMalformedCsv) {
  report::CsvWriter sink(std::cout);
  {
    std::istringstream in("a,b\n\"unterminated");
    EXPECT_THROW((void)csv_to_rows(in, sink), WireError);
  }
  {
    std::istringstream in("a,b\n1,2");  // no trailing newline
    EXPECT_THROW((void)csv_to_rows(in, sink), WireError);
  }
}

TEST(Columnar, RejectsCorruptStreams) {
  const std::string good = col_of(kHeaders, tricky_rows());
  report::CsvWriter sink(std::cout);

  {  // bad magic
    std::string bad = good;
    bad[0] = 'X';
    std::istringstream in(bad);
    EXPECT_THROW((void)read_columnar(in, sink), WireError);
  }
  {  // unsupported version (bytes 8..11 are the u32 version)
    std::string bad = good;
    bad[8] = 99;
    std::istringstream in(bad);
    EXPECT_THROW((void)read_columnar(in, sink), WireError);
  }
  {  // truncation (drop the footer and half the last chunk)
    std::string bad = good.substr(0, good.size() - 12);
    std::istringstream in(bad);
    EXPECT_THROW((void)read_columnar(in, sink), WireError);
  }
  {  // bit rot inside a chunk payload -> checksum mismatch
    std::string bad = good;
    bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x40);
    std::istringstream in(bad);
    EXPECT_THROW((void)read_columnar(in, sink), WireError);
  }
  {  // a foreign file entirely
    std::istringstream in("not a columnar file at all");
    EXPECT_THROW((void)read_columnar(in, sink), WireError);
  }
}

// --- real row streams -------------------------------------------------------

TEST(Columnar, SweepRowsRoundTripByteIdentically) {
  runner::SweepGrid grid;
  grid.workloads({"a2time"}).schemes({"no-ecc", "laec"});
  const auto points = grid.points();

  std::ostringstream direct;
  {
    report::CsvWriter w(direct);
    runner::SweepOptions o;
    o.threads = 1;
    o.sink = &w;
    (void)runner::run_sweep(points, o);
  }

  std::ostringstream col;
  {
    ColumnarWriter w(col);
    runner::SweepOptions o;
    o.threads = 1;
    o.sink = &w;
    (void)runner::run_sweep(points, o);
  }

  EXPECT_EQ(decode_to_csv(col.str()), direct.str());
}

TEST(Columnar, CampaignRowsRoundTripByteIdentically) {
  reliability::CampaignGrid grid;
  grid.workloads({"a2time"}).schemes({"laec"});
  grid.rates({*reliability::tech_preset("40nm")});
  reliability::CampaignSpec spec;
  spec.trials = 6;
  spec.min_trials = 3;
  spec.batch = 3;

  const auto run_with = [&](report::RowWriter& w) {
    reliability::CampaignOptions o;
    o.threads = 1;
    o.sink = &w;
    (void)reliability::run_campaign(grid.cells(), spec, o);
  };

  std::ostringstream direct;
  report::CsvWriter cw(direct);
  run_with(cw);

  std::ostringstream col;
  ColumnarWriter xw(col);
  run_with(xw);

  EXPECT_EQ(decode_to_csv(col.str()), direct.str());
}

}  // namespace
}  // namespace laec::service
