// Interleaved parity (parity-i2-32) property tests — exhaustive over flip
// positions:
//  * clean words round-trip;
//  * every single flip (data or check) is detected;
//  * every ADJACENT double flip is detected (the capability plain parity
//    lacks and the reason this codec exists);
//  * same-class double flips are silent (the documented parity limitation);
//  * the registry serves it and the deployment layer gives it the
//    write-through detect-only arrangement.
#include "ecc/parity_i2.hpp"

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "core/deployment.hpp"
#include "ecc/registry.hpp"

namespace laec {
namespace {

std::vector<u64> sample_words() {
  std::vector<u64> words = {0u, 0xffffffffu, 0xa5a5a5a5u, 0x00000001u,
                            0x80000000u, 0x55555555u};
  Rng rng(0x1f2);
  for (int i = 0; i < 32; ++i) words.push_back(rng.next_u64() & 0xffffffffu);
  return words;
}

TEST(InterleavedParity, CleanWordsRoundTrip) {
  const auto codec = ecc::make_codec("parity-i2-32");
  EXPECT_EQ(codec->data_bits(), 32u);
  EXPECT_EQ(codec->check_bits(), 2u);
  for (const u64 w : sample_words()) {
    const auto d = codec->decode(w, codec->encode(w));
    EXPECT_EQ(d.status, ecc::CheckStatus::kOk);
    EXPECT_EQ(d.data, w);
  }
}

TEST(InterleavedParity, EverySingleFlipIsDetected) {
  const auto codec = ecc::make_codec("parity-i2-32");
  for (const u64 w : sample_words()) {
    const u64 check = codec->encode(w);
    for (unsigned bit = 0; bit < codec->codeword_bits(); ++bit) {
      const u64 data = bit < 32 ? flip_bit(w, bit) : w;
      const u64 chk = bit < 32 ? check : flip_bit(check, bit - 32);
      const auto d = codec->decode(data, chk);
      ASSERT_EQ(d.status, ecc::CheckStatus::kDetectedUncorrectable)
          << "word " << std::hex << w << " bit " << std::dec << bit;
    }
  }
}

TEST(InterleavedParity, EveryAdjacentDoubleFlipIsDetected) {
  const auto codec = ecc::make_codec("parity-i2-32");
  ASSERT_TRUE(codec->detects_adjacent_double());
  for (const u64 w : sample_words()) {
    const u64 check = codec->encode(w);
    // All adjacent pairs across the 34-bit codeword, including the
    // data/check boundary (31,32) and the check pair (32,33).
    for (unsigned a = 0; a + 1 < codec->codeword_bits(); ++a) {
      u64 data = w;
      u64 chk = check;
      for (const unsigned bit : {a, a + 1}) {
        if (bit < 32) {
          data = flip_bit(data, bit);
        } else {
          chk = flip_bit(chk, bit - 32);
        }
      }
      const auto d = codec->decode(data, chk);
      ASSERT_EQ(d.status, ecc::CheckStatus::kDetectedUncorrectable)
          << "word " << std::hex << w << " pair " << std::dec << a;
    }
  }
}

TEST(InterleavedParity, SameClassDoubleFlipsAreSilent) {
  // The fundamental limitation: two flips in the SAME interleave class
  // (distance 2, 4, ...) cancel within their parity tree. Documented, not
  // corrected — exactly like plain parity for any even-weight error.
  const auto codec = ecc::make_codec("parity-i2-32");
  for (const u64 w : sample_words()) {
    const u64 check = codec->encode(w);
    for (unsigned a = 0; a + 2 < 32; a += 5) {
      const u64 data = flip_bit(flip_bit(w, a), a + 2);
      const auto d = codec->decode(data, check);
      ASSERT_EQ(d.status, ecc::CheckStatus::kOk) << "pair " << a;
      ASSERT_NE(d.data, w) << "silent corruption is delivered as stored";
    }
  }
}

TEST(InterleavedParity, CapabilityFlags) {
  const auto codec = ecc::make_codec("parity-i2-32");
  EXPECT_FALSE(codec->corrects_single());
  EXPECT_FALSE(codec->detects_double());
  EXPECT_FALSE(codec->corrects_adjacent_double());
  EXPECT_TRUE(codec->detects_adjacent_double());
  // Plain parity does NOT have the adjacent-double guarantee; SECDED and
  // SEC-DAEC get it via the stronger capabilities.
  EXPECT_FALSE(ecc::make_codec("parity-32")->detects_adjacent_double());
  EXPECT_TRUE(ecc::make_codec("secded-39-32")->detects_adjacent_double());
  EXPECT_TRUE(ecc::make_codec("sec-daec-39-32")->detects_adjacent_double());
}

TEST(InterleavedParity, DeploysAsDetectOnlyScheme) {
  // Bare-codec DL1 key: detect-only -> the write-through parity arrangement.
  const auto d = core::HierarchyDeployment::parse("parity-i2-32");
  EXPECT_EQ(d.codec, "parity-i2-32");
  EXPECT_EQ(d.timing, cpu::EccPolicy::kWtParity);
  EXPECT_EQ(d.write_policy, mem::WritePolicy::kWriteThrough);
  EXPECT_EQ(d.recovery, mem::RecoveryPolicy::kInvalidateRefetch);
  // And as a cheap L1I upgrade in a compound key.
  const auto h = core::HierarchyDeployment::parse("laec+l1i:parity-i2-32");
  EXPECT_EQ(h.l1i.codec, "parity-i2-32");
  EXPECT_EQ(h.l1i.recovery, mem::RecoveryPolicy::kInvalidateRefetch);
  // A correcting placement must reject it.
  EXPECT_THROW((void)core::HierarchyDeployment::parse("laec:parity-i2-32"),
               std::invalid_argument);
}

}  // namespace
}  // namespace laec
