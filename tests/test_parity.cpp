#include "ecc/parity.hpp"

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace laec::ecc {
namespace {

TEST(Parity, CleanWordPasses) {
  ParityCode c(32);
  for (u64 v : {0ull, 1ull, 0xdeadbeefull, 0xffffffffull}) {
    const u64 p = c.encode(v);
    const auto r = c.check(v, p);
    EXPECT_EQ(r.status, CheckStatus::kOk);
    EXPECT_EQ(r.data, v);
  }
}

class ParitySingleFlip : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParitySingleFlip, EverySingleDataFlipDetected) {
  ParityCode c(32);
  const u64 v = 0x1234abcd;
  const u64 p = c.encode(v);
  const auto r = c.check(flip_bit(v, GetParam()), p);
  EXPECT_EQ(r.status, CheckStatus::kDetectedUncorrectable);
}

INSTANTIATE_TEST_SUITE_P(AllBits, ParitySingleFlip, ::testing::Range(0u, 32u));

TEST(Parity, CheckBitFlipDetected) {
  ParityCode c(32);
  const u64 v = 0x55aa55aa;
  const u64 p = c.encode(v);
  EXPECT_EQ(c.check(v, p ^ 1).status, CheckStatus::kDetectedUncorrectable);
}

TEST(Parity, DoubleFlipIsSilent) {
  // The fundamental parity weakness: even numbers of flips pass. This is
  // why WB caches need SECDED (paper §II).
  ParityCode c(32);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const u64 v = rng.next_u64() & 0xffffffff;
    const u64 p = c.encode(v);
    const unsigned a = static_cast<unsigned>(rng.below(32));
    unsigned b = static_cast<unsigned>(rng.below(31));
    if (b >= a) ++b;
    const auto r = c.check(flip_bit(flip_bit(v, a), b), p);
    EXPECT_EQ(r.status, CheckStatus::kOk);
  }
}

TEST(Parity, NarrowWidths) {
  for (unsigned w : {8u, 16u}) {
    ParityCode c(w);
    const u64 v = 0xa5;
    const u64 p = c.encode(v);
    EXPECT_EQ(c.check(v, p).status, CheckStatus::kOk);
    EXPECT_EQ(c.check(flip_bit(v, 2), p).status,
              CheckStatus::kDetectedUncorrectable);
  }
}

}  // namespace
}  // namespace laec::ecc
