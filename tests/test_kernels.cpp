// Integration tests: every EEMBC-like kernel runs to completion and
// produces its reference results under every DL1 ECC deployment — the
// "timing-only" invariant (DESIGN.md §6) at full-application scale.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"
#include "workloads/eembc.hpp"

namespace laec::workloads {
namespace {

using cpu::EccPolicy;

class KernelMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, EccPolicy>> {};

TEST_P(KernelMatrix, SelfChecksPass) {
  const auto& [name, policy] = GetParam();
  const KernelEntry& entry = kernel_by_name(name);
  const BuiltKernel k = entry.build();
  ASSERT_FALSE(k.expected.empty()) << name << " has no self-checks";

  auto r = test::run_keep_system(test::test_config(policy), k.program);
  ASSERT_TRUE(r.stats.completed) << name << " did not halt";
  int mismatches = 0;
  for (const auto& [addr, expect] : k.expected) {
    const u32 got = r.system->read_word_final(addr);
    if (got != expect && ++mismatches <= 5) {
      ADD_FAILURE() << name << " @0x" << std::hex << addr << ": got 0x"
                    << got << " expected 0x" << expect;
    }
  }
  EXPECT_EQ(mismatches, 0) << name;
}

std::vector<std::string> kernel_names() {
  std::vector<std::string> names;
  for (const auto& e : eembc_kernels()) names.emplace_back(e.name);
  return names;
}

std::string policy_id(EccPolicy p) {
  switch (p) {
    case EccPolicy::kNoEcc: return "NoEcc";
    case EccPolicy::kExtraCycle: return "ExtraCycle";
    case EccPolicy::kExtraStage: return "ExtraStage";
    case EccPolicy::kLaec: return "Laec";
    case EccPolicy::kWtParity: return "WtParity";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllPolicies, KernelMatrix,
    ::testing::Combine(::testing::ValuesIn(kernel_names()),
                       ::testing::Values(EccPolicy::kNoEcc,
                                         EccPolicy::kExtraCycle,
                                         EccPolicy::kExtraStage,
                                         EccPolicy::kLaec,
                                         EccPolicy::kWtParity)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + policy_id(std::get<1>(info.param));
    });

TEST(Kernels, RegistryHasSixteenInPaperOrder) {
  const auto& ks = eembc_kernels();
  ASSERT_EQ(ks.size(), 16u);
  EXPECT_STREQ(ks.front().name, "a2time");
  EXPECT_STREQ(ks.back().name, "ttsprk");
  // Table II averages (paper: 89 / 60 / 25).
  double hit = 0, dep = 0, load = 0;
  for (const auto& e : ks) {
    hit += e.paper.hit_pct;
    dep += e.paper.dep_pct;
    load += e.paper.load_pct;
  }
  EXPECT_NEAR(hit / 16, 89.0, 1.0);
  EXPECT_NEAR(dep / 16, 60.0, 1.0);
  EXPECT_NEAR(load / 16, 25.0, 1.0);
}

TEST(Kernels, UnknownNameThrows) {
  EXPECT_THROW((void)kernel_by_name("nope"), std::out_of_range);
}

TEST(Kernels, CycleOrderingHoldsOnRealWorkloads) {
  // The paper's headline ordering on a real kernel, not just random code.
  for (const char* name : {"matrix", "pntrch", "tblook"}) {
    const BuiltKernel k = kernel_by_name(name).build();
    const auto no_ecc =
        test::run(test::test_config(EccPolicy::kNoEcc), k.program);
    const auto laec = test::run(test::test_config(EccPolicy::kLaec), k.program);
    const auto es =
        test::run(test::test_config(EccPolicy::kExtraStage), k.program);
    const auto ec =
        test::run(test::test_config(EccPolicy::kExtraCycle), k.program);
    EXPECT_LE(no_ecc.cycles, laec.cycles) << name;
    EXPECT_LE(laec.cycles, es.cycles) << name;
    EXPECT_LE(es.cycles, ec.cycles + 2) << name;
  }
}

TEST(Kernels, MatrixIsAddrDepBound) {
  // matrix's inner loop computes load addresses immediately before the
  // loads, so LAEC should barely improve on Extra Stage (Fig. 8).
  const BuiltKernel k = kernel_by_name("matrix").build();
  auto r = test::run(test::test_config(EccPolicy::kLaec), k.program);
  EXPECT_GT(r.laec_data_hazard, r.laec_anticipated);
}

TEST(Kernels, BasefpAnticipatesAlmostEverything) {
  const BuiltKernel k = kernel_by_name("basefp").build();
  auto r = test::run(test::test_config(EccPolicy::kLaec), k.program);
  EXPECT_GT(r.laec_anticipated, 3 * r.laec_data_hazard);
}

}  // namespace
}  // namespace laec::workloads
