// Service plumbing: the MPMC work queue, the wire codec, the framing
// protocol, CampaignJob serialization, and the work-queue daemon end to
// end — rows streamed over the socket must be byte-identical to a local
// run_campaign of the same job.
#include "service/daemon.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "reliability/campaign.hpp"
#include "service/job.hpp"
#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "service/wire.hpp"

namespace laec::service {
namespace {

// --- MpmcQueue --------------------------------------------------------------

TEST(MpmcQueue, FifoOrderSingleThread) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpmcQueue, CloseDrainsThenReturnsNullopt) {
  MpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));  // rejected after close
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());  // stays empty forever
}

TEST(MpmcQueue, ManyProducersManyConsumersLoseNothing) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 500;
  MpmcQueue<int> q(8);  // small ring: forces real blocking both ways
  std::vector<std::thread> producers, consumers;
  std::mutex m;
  std::vector<int> seen;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const auto v = q.pop();
        if (!v.has_value()) return;
        std::lock_guard<std::mutex> lock(m);
        seen.push_back(*v);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  ASSERT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)], i) << "lost or duplicated";
  }
}

// --- wire codec -------------------------------------------------------------

TEST(Wire, RoundTripsEveryType) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefull);
  w.put_double(0.1 + 0.2);
  const std::string_view with_nul("nul\0inside", 10);  // binary-safe?
  w.put_string(with_nul);
  w.put_string("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(std::bit_cast<u64>(r.get_double()),
            std::bit_cast<u64>(0.1 + 0.2));
  EXPECT_EQ(r.get_string(), std::string(with_nul));
  EXPECT_EQ(r.get_string(), "");
  r.expect_end();
}

TEST(Wire, ReaderRejectsTruncationAndTrailingBytes) {
  ByteWriter w;
  w.put_u32(7);
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.get_u64(), WireError);  // only 4 bytes there
  ByteReader r2(w.bytes());
  (void)r2.get_u8();
  EXPECT_THROW(r2.expect_end(), WireError);  // 3 bytes left over
  ByteReader r3(std::string_view("\x10\x00\x00\x00ab", 6));
  EXPECT_THROW((void)r3.get_string(), WireError);  // length 16, have 2
}

// --- protocol ---------------------------------------------------------------

TEST(Protocol, StringListAndDoneRoundTrip) {
  const std::vector<std::string> items = {"a", "", "with,comma", "\n"};
  EXPECT_EQ(decode_string_list(encode_string_list(items)), items);

  DoneSummary d;
  d.cells = 3;
  d.trials = 99;
  d.failures = 7;
  const DoneSummary back = decode_done(encode_done(d));
  EXPECT_EQ(back.cells, 3u);
  EXPECT_EQ(back.trials, 99u);
  EXPECT_EQ(back.failures, 7u);
}

TEST(Protocol, HelloIsValidatedStrictly) {
  check_hello(hello_payload());  // must not throw
  EXPECT_THROW(check_hello("garbage"), WireError);
  ByteWriter w;
  w.put_string("LAECSRV");
  w.put_u32(kProtocolVersion + 1);
  EXPECT_THROW(check_hello(w.bytes()), WireError);
}

TEST(Protocol, FramesTravelThroughARealFd) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload(100000, 'x');  // bigger than one pipe buffer
  std::thread writer([&] { write_frame(fds[1], FrameType::kRow, payload); });
  const Frame f = read_frame(fds[0]);
  writer.join();
  EXPECT_EQ(f.type, FrameType::kRow);
  EXPECT_EQ(f.payload, payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Protocol, RejectsOversizedFrames) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ByteWriter head;
  head.put_u32(kMaxFramePayload + 1);
  head.put_u8(static_cast<u8>(FrameType::kRow));
  ASSERT_EQ(::write(fds[1], head.bytes().data(), head.bytes().size()),
            static_cast<ssize_t>(head.bytes().size()));
  EXPECT_THROW((void)read_frame(fds[0]), WireError);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- CampaignJob ------------------------------------------------------------

CampaignJob sample_job() {
  reliability::CampaignGrid grid;
  grid.workloads({"a2time"}).schemes({"laec", "sec-daec-39-32"});
  grid.rates({*reliability::tech_preset("40nm")});
  CampaignJob job;
  job.cells = grid.cells();
  job.spec.trials = 8;
  job.spec.min_trials = 4;
  job.spec.batch = 4;
  job.base_seed = 0x1234;
  job.shard_index = 0;
  job.shard_count = 1;
  return job;
}

TEST(CampaignJob, SerializeParseRoundTrips) {
  const CampaignJob job = sample_job();
  const CampaignJob back = parse_job(serialize_job(job));
  EXPECT_EQ(back.base_seed, job.base_seed);
  EXPECT_EQ(back.shard_index, job.shard_index);
  EXPECT_EQ(back.shard_count, job.shard_count);
  EXPECT_EQ(back.spec.trials, job.spec.trials);
  EXPECT_EQ(back.spec.batch, job.spec.batch);
  ASSERT_EQ(back.cells.size(), job.cells.size());
  for (std::size_t i = 0; i < job.cells.size(); ++i) {
    EXPECT_EQ(back.cells[i].index, job.cells[i].index);
    EXPECT_EQ(back.cells[i].workload, job.cells[i].workload);
    EXPECT_EQ(back.cells[i].scheme, job.cells[i].scheme);
    EXPECT_EQ(back.cells[i].rate.label, job.cells[i].rate.label);
    EXPECT_EQ(back.cells[i].rate.fit_per_mbit, job.cells[i].rate.fit_per_mbit);
  }
  // The round-trip preserves the identity hash (the checkpoint guard).
  EXPECT_EQ(campaign_identity(back), campaign_identity(job));
}

TEST(CampaignJob, IdentityReactsToEveryConfigurationAxis) {
  const CampaignJob base = sample_job();
  const u64 id = campaign_identity(base);

  CampaignJob j = base;
  j.base_seed ^= 1;
  EXPECT_NE(campaign_identity(j), id);

  j = base;
  j.shard_index = 1;
  j.shard_count = 2;
  EXPECT_NE(campaign_identity(j), id);

  j = base;
  j.spec.trials += 1;
  EXPECT_NE(campaign_identity(j), id);

  j = base;
  j.spec.base.dl1_size_bytes *= 2;
  EXPECT_NE(campaign_identity(j), id);

  // A --no-prune run is the same campaign rows-wise, but NOT the same RNG
  // bookkeeping contract — never silently resume across the toggle.
  j = base;
  j.spec.prune = false;
  EXPECT_NE(campaign_identity(j), id);

  j = base;
  j.cells.pop_back();
  EXPECT_NE(campaign_identity(j), id);
}

TEST(CampaignJob, ParseRejectsTruncatedAndAlienBytes) {
  const std::string bytes = serialize_job(sample_job());
  EXPECT_THROW((void)parse_job(bytes.substr(0, bytes.size() / 2)), WireError);
  EXPECT_THROW((void)parse_job("alien"), WireError);
  EXPECT_THROW((void)parse_job(bytes + "trailing"), WireError);
}

// --- daemon end to end ------------------------------------------------------

struct DaemonFixture {
  std::string socket_path;
  std::atomic<bool> stop{false};
  std::thread thread;

  DaemonFixture() {
    static int counter = 0;
    socket_path = (std::filesystem::temp_directory_path() /
                   ("laec-test-daemon-" + std::to_string(::getpid()) + "-" +
                    std::to_string(counter++) + ".sock"))
                      .string();
    thread = std::thread([this] {
      ServeOptions so;
      so.socket_path = socket_path;
      so.workers = 2;
      so.stop = &stop;
      so.verbose = false;
      (void)run_daemon(so);
    });
    // Wait for the socket to appear.
    for (int i = 0; i < 200; ++i) {
      if (std::filesystem::exists(socket_path)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  ~DaemonFixture() {
    if (std::filesystem::exists(socket_path)) {
      try {
        request_shutdown(socket_path);
      } catch (const std::exception&) {
        stop.store(true);
      }
    } else {
      stop.store(true);
    }
    if (thread.joinable()) thread.join();
  }
};

std::string local_csv(const CampaignJob& job, unsigned shard_index = 0,
                      unsigned shard_count = 1) {
  std::ostringstream out;
  report::CsvWriter w(out);
  reliability::CampaignOptions o;
  o.threads = 1;
  o.base_seed = job.base_seed;
  o.shard_index = shard_index;
  o.shard_count = shard_count;
  o.sink = &w;
  (void)reliability::run_campaign(job.cells, job.spec, o);
  return out.str();
}

std::string submit_csv(const std::string& socket_path, CampaignJob job) {
  std::ostringstream out;
  report::CsvWriter w(out);
  (void)submit_job(socket_path, job, w);
  return out.str();
}

TEST(Daemon, StreamsRowsByteIdenticalToALocalRun) {
  DaemonFixture daemon;
  const CampaignJob job = sample_job();
  EXPECT_EQ(submit_csv(daemon.socket_path, job), local_csv(job));
}

TEST(Daemon, ComplementaryShardClientsCoverTheGrid) {
  DaemonFixture daemon;
  CampaignJob job = sample_job();

  job.shard_index = 0;
  job.shard_count = 2;
  const std::string shard0 = submit_csv(daemon.socket_path, job);
  EXPECT_EQ(shard0, local_csv(job, 0, 2));

  job.shard_index = 1;
  const std::string shard1 = submit_csv(daemon.socket_path, job);
  EXPECT_EQ(shard1, local_csv(job, 1, 2));

  EXPECT_NE(shard0, shard1);
}

TEST(Daemon, ConcurrentClientsBothGetExactRows) {
  DaemonFixture daemon;
  const CampaignJob job = sample_job();
  const std::string want = local_csv(job);
  std::string got_a, got_b;
  std::thread a([&] { got_a = submit_csv(daemon.socket_path, job); });
  std::thread b([&] { got_b = submit_csv(daemon.socket_path, job); });
  a.join();
  b.join();
  EXPECT_EQ(got_a, want);
  EXPECT_EQ(got_b, want);
}

TEST(Daemon, RejectsJobsWithUnknownSchemeOrWorkload) {
  DaemonFixture daemon;
  CampaignJob job = sample_job();
  job.cells[0].workload = "no-such-kernel";
  std::ostringstream out;
  report::CsvWriter w(out);
  EXPECT_THROW((void)submit_job(daemon.socket_path, job, w),
               std::runtime_error);
  // The daemon survives a rejected job and still serves good ones.
  EXPECT_EQ(submit_csv(daemon.socket_path, sample_job()),
            local_csv(sample_job()));
}

TEST(Daemon, ShutdownRequestStopsTheDaemon) {
  std::string path;
  {
    DaemonFixture daemon;
    path = daemon.socket_path;
    ASSERT_TRUE(std::filesystem::exists(path));
    request_shutdown(path);
    // Destructor joins; a second shutdown in ~DaemonFixture is a no-op
    // because the socket file is gone.
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace laec::service
