#include "mem/memory.hpp"

#include <gtest/gtest.h>

namespace laec::mem {
namespace {

TEST(MainMemory, ZeroInitialized) {
  MainMemory m;
  EXPECT_EQ(m.read_u32(0x1000), 0u);
  EXPECT_EQ(m.read_u8(0xdeadbeef), 0u);
  EXPECT_EQ(m.resident_pages(), 0u);  // reads allocate nothing
}

TEST(MainMemory, ByteHalfWordRoundTrip) {
  MainMemory m;
  m.write_u8(0x100, 0xab);
  EXPECT_EQ(m.read_u8(0x100), 0xab);
  m.write_u16(0x200, 0xbeef);
  EXPECT_EQ(m.read_u16(0x200), 0xbeef);
  m.write_u32(0x300, 0x12345678);
  EXPECT_EQ(m.read_u32(0x300), 0x12345678u);
}

TEST(MainMemory, LittleEndianLayout) {
  MainMemory m;
  m.write_u32(0x10, 0x11223344);
  EXPECT_EQ(m.read_u8(0x10), 0x44);
  EXPECT_EQ(m.read_u8(0x13), 0x11);
  EXPECT_EQ(m.read_u16(0x10), 0x3344);
}

TEST(MainMemory, CrossPageAccess) {
  MainMemory m;
  const Addr edge = MainMemory::kPageSize - 2;
  m.write_u32(edge, 0xcafebabe);
  EXPECT_EQ(m.read_u32(edge), 0xcafebabeu);
  EXPECT_EQ(m.resident_pages(), 2u);
}

TEST(MainMemory, BlockOps) {
  MainMemory m;
  u8 src[32], dst[32];
  for (int i = 0; i < 32; ++i) src[i] = static_cast<u8>(i * 3);
  m.write_block(0x4000, src, 32);
  m.read_block(0x4000, dst, 32);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(dst[i], src[i]);
}

TEST(MainMemory, SparseHighAddresses) {
  MainMemory m;
  m.write_u32(0xfffffff0u, 7);
  EXPECT_EQ(m.read_u32(0xfffffff0u), 7u);
  EXPECT_LE(m.resident_pages(), 1u);
}

}  // namespace
}  // namespace laec::mem
