#include "energy/energy.hpp"

#include <gtest/gtest.h>

#include "ecc/registry.hpp"

namespace laec::energy {
namespace {

core::RunStats fake_stats(u64 cycles, u64 insts, u64 loads, u64 stores,
                          u64 anticipated) {
  core::RunStats s;
  s.cycles = cycles;
  s.instructions = insts;
  s.loads = loads;
  s.stores = stores;
  s.laec_anticipated = anticipated;
  return s;
}

TEST(Energy, LeakageProportionalToCycles) {
  EnergyParams p;
  const auto a = compute(p, fake_stats(1'000'000, 700'000, 170'000, 50'000, 0),
                         cpu::EccPolicy::kExtraStage);
  const auto b = compute(p, fake_stats(2'000'000, 700'000, 170'000, 50'000, 0),
                         cpu::EccPolicy::kExtraStage);
  EXPECT_NEAR(b.leakage_uj / a.leakage_uj, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(a.dynamic_uj, b.dynamic_uj);  // same event counts
}

TEST(Energy, LaecHardwareAdderIsUnderOnePercent) {
  // The paper's §IV.A claim: the extra RF ports + adder cost < 1% power.
  EnergyParams p;
  const auto s = fake_stats(1'000'000, 700'000, 170'000, 50'000, 120'000);
  const auto e = compute(p, s, cpu::EccPolicy::kLaec);
  EXPECT_GT(e.laec_adder_uj, 0.0);
  EXPECT_LT(e.laec_dynamic_fraction(), 0.01);
}

TEST(Energy, SecdedCostsMoreThanParityThanNone) {
  EnergyParams p;
  const auto s = fake_stats(1'000'000, 700'000, 170'000, 50'000, 0);
  const auto none = compute(p, s, cpu::EccPolicy::kNoEcc);
  const auto par = compute(p, s, cpu::EccPolicy::kWtParity);
  const auto sec = compute(p, s, cpu::EccPolicy::kExtraStage);
  EXPECT_LT(none.dynamic_uj, par.dynamic_uj);
  EXPECT_LT(par.dynamic_uj, sec.dynamic_uj);
}

TEST(Energy, NoEccPolicyHasNoLaecAdder) {
  EnergyParams p;
  const auto s = fake_stats(1'000'000, 700'000, 170'000, 50'000, 99'999);
  const auto e = compute(p, s, cpu::EccPolicy::kNoEcc);
  EXPECT_DOUBLE_EQ(e.laec_adder_uj, 0.0);
}

TEST(Energy, CalibratedTableAndGeometryFallback) {
  EnergyParams p;
  // Reference point: secded-39-32 IS the calibration anchor.
  const auto secded = codec_energy(p, *ecc::make_codec("secded-39-32"));
  EXPECT_DOUBLE_EQ(secded.check_pj, p.secded_check_pj);
  EXPECT_DOUBLE_EQ(secded.encode_pj, p.secded_encode_pj);
  // SEC-DAEC shares the encoder but pays for the adjacent-pair comparators
  // in the checker — calibrated above the anchor, below naive 2x.
  const auto daec = codec_energy(p, *ecc::make_codec("sec-daec-39-32"));
  EXPECT_GT(daec.check_pj, secded.check_pj);
  EXPECT_LT(daec.check_pj, 2.0 * secded.check_pj);
  EXPECT_DOUBLE_EQ(daec.encode_pj, secded.encode_pj);
  // Parity-class detectors: one tree per interleave way.
  const auto par = codec_energy(p, *ecc::make_codec("parity-32"));
  EXPECT_DOUBLE_EQ(par.check_pj, p.parity_pj);
  const auto i2 = codec_energy(p, *ecc::make_codec("parity-i2-32"));
  EXPECT_DOUBLE_EQ(i2.check_pj, 2.0 * p.parity_pj);
  // Unprotected arrays are free.
  const auto none = codec_energy(p, *ecc::make_codec("none"));
  EXPECT_DOUBLE_EQ(none.check_pj, 0.0);
  // Uncalibrated syndrome geometry falls back to check-bit scaling: a
  // codec the table does not know scales by r/7 off the anchor.
  class FakeDec final : public ecc::Codec {
   public:
    [[nodiscard]] std::string_view name() const override {
      return "dec-45-32";
    }
    [[nodiscard]] unsigned data_bits() const override { return 32; }
    [[nodiscard]] unsigned check_bits() const override { return 13; }
    [[nodiscard]] u64 encode(u64) const override { return 0; }
    [[nodiscard]] Decoded decode(u64 d, u64) const override {
      return {ecc::CheckStatus::kOk, d, 0};
    }
    [[nodiscard]] bool corrects_single() const override { return true; }
  } fake;
  const auto dec = codec_energy(p, fake);
  EXPECT_DOUBLE_EQ(dec.check_pj, p.secded_check_pj * 13.0 / 7.0);
}

TEST(Energy, PerLevelEccEnergyFollowsTheDeployedHierarchy) {
  EnergyParams p;
  auto s = fake_stats(1'000'000, 700'000, 170'000, 50'000, 0);
  s.l1i_fetches = 600'000;
  s.l1i_fill_words = 8'000;
  s.l2_reads = 40'000;
  s.l2_writes = 10'000;
  s.l2_fill_words = 32'000;

  const auto base = compute(p, s, core::HierarchyDeployment::parse("laec"));
  EXPECT_GT(base.dl1_ecc_uj, 0.0);
  EXPECT_GT(base.l1i_ecc_uj, 0.0);
  EXPECT_GT(base.l2_ecc_uj, 0.0);

  // Upgrading only the L2 changes only the L2 share (and the total).
  const auto daec_l2 =
      compute(p, s, core::HierarchyDeployment::parse("laec+l2:sec-daec-39-32"));
  EXPECT_DOUBLE_EQ(daec_l2.dl1_ecc_uj, base.dl1_ecc_uj);
  EXPECT_DOUBLE_EQ(daec_l2.l1i_ecc_uj, base.l1i_ecc_uj);
  EXPECT_GT(daec_l2.l2_ecc_uj, base.l2_ecc_uj);
  EXPECT_GT(daec_l2.dynamic_uj, base.dynamic_uj);

  // The per-level shares are part of (not on top of) the dynamic total.
  EXPECT_LT(base.dl1_ecc_uj + base.l1i_ecc_uj + base.l2_ecc_uj,
            base.dynamic_uj);
}

TEST(Energy, TotalIsDynamicPlusLeakage) {
  EnergyParams p;
  const auto s = fake_stats(500'000, 300'000, 80'000, 20'000, 10'000);
  const auto e = compute(p, s, cpu::EccPolicy::kLaec);
  EXPECT_DOUBLE_EQ(e.total_uj(), e.dynamic_uj + e.leakage_uj);
  EXPECT_GT(e.dynamic_uj, 0.0);
  EXPECT_GT(e.leakage_uj, 0.0);
}

}  // namespace
}  // namespace laec::energy
