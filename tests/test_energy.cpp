#include "energy/energy.hpp"

#include <gtest/gtest.h>

namespace laec::energy {
namespace {

core::RunStats fake_stats(u64 cycles, u64 insts, u64 loads, u64 stores,
                          u64 anticipated) {
  core::RunStats s;
  s.cycles = cycles;
  s.instructions = insts;
  s.loads = loads;
  s.stores = stores;
  s.laec_anticipated = anticipated;
  return s;
}

TEST(Energy, LeakageProportionalToCycles) {
  EnergyParams p;
  const auto a = compute(p, fake_stats(1'000'000, 700'000, 170'000, 50'000, 0),
                         cpu::EccPolicy::kExtraStage);
  const auto b = compute(p, fake_stats(2'000'000, 700'000, 170'000, 50'000, 0),
                         cpu::EccPolicy::kExtraStage);
  EXPECT_NEAR(b.leakage_uj / a.leakage_uj, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(a.dynamic_uj, b.dynamic_uj);  // same event counts
}

TEST(Energy, LaecHardwareAdderIsUnderOnePercent) {
  // The paper's §IV.A claim: the extra RF ports + adder cost < 1% power.
  EnergyParams p;
  const auto s = fake_stats(1'000'000, 700'000, 170'000, 50'000, 120'000);
  const auto e = compute(p, s, cpu::EccPolicy::kLaec);
  EXPECT_GT(e.laec_adder_uj, 0.0);
  EXPECT_LT(e.laec_dynamic_fraction(), 0.01);
}

TEST(Energy, SecdedCostsMoreThanParityThanNone) {
  EnergyParams p;
  const auto s = fake_stats(1'000'000, 700'000, 170'000, 50'000, 0);
  const auto none = compute(p, s, cpu::EccPolicy::kNoEcc);
  const auto par = compute(p, s, cpu::EccPolicy::kWtParity);
  const auto sec = compute(p, s, cpu::EccPolicy::kExtraStage);
  EXPECT_LT(none.dynamic_uj, par.dynamic_uj);
  EXPECT_LT(par.dynamic_uj, sec.dynamic_uj);
}

TEST(Energy, NoEccPolicyHasNoLaecAdder) {
  EnergyParams p;
  const auto s = fake_stats(1'000'000, 700'000, 170'000, 50'000, 99'999);
  const auto e = compute(p, s, cpu::EccPolicy::kNoEcc);
  EXPECT_DOUBLE_EQ(e.laec_adder_uj, 0.0);
}

TEST(Energy, TotalIsDynamicPlusLeakage) {
  EnergyParams p;
  const auto s = fake_stats(500'000, 300'000, 80'000, 20'000, 10'000);
  const auto e = compute(p, s, cpu::EccPolicy::kLaec);
  EXPECT_DOUBLE_EQ(e.total_uj(), e.dynamic_uj + e.leakage_uj);
  EXPECT_GT(e.dynamic_uj, 0.0);
  EXPECT_GT(e.leakage_uj, 0.0);
}

}  // namespace
}  // namespace laec::energy
