// Cycle-for-cycle reproduction of the paper's pipeline chronograms
// (Figs. 2, 3, 4, 5, 7a, 7b) — experiment E4 in DESIGN.md.
//
// Each test assembles exactly the instruction sequence shown in the figure,
// pre-warms the caches (the figures assume DL1/L1I hits), and compares the
// recorded per-cycle stage strings against the figure.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace laec::cpu {
namespace {

using isa::Assembler;
using isa::R;

struct ChronoRun {
  std::unique_ptr<sim::System> system;
  const report::ChronogramRecorder* chrono = nullptr;

  std::string row(Seq seq) const { return chrono->compact(seq); }
};

/// Run `p` with r1/r2/r4/r6 preset and the caches warm.
ChronoRun run_chrono(EccPolicy ecc, const isa::Program& p, Addr data_addr,
                     EccSlotPolicy slot = EccSlotPolicy::kAuto,
                     HazardRule rule = HazardRule::kExact) {
  core::SimConfig cfg = test::test_config(ecc);
  cfg.record_chronogram = true;
  cfg.ecc_slot = slot;
  cfg.hazard_rule = rule;
  ChronoRun r;
  r.system = std::make_unique<sim::System>(
      core::make_system_config(cfg, /*trace_mode=*/false));
  r.system->load_program(p);
  test::prefill_icache(*r.system, p);
  test::prefill_dl1(*r.system, data_addr);
  auto& pipe = r.system->core(0).pipeline();
  pipe.set_reg(1, data_addr);  // load base
  pipe.set_reg(2, 0);          // load index
  pipe.set_reg(4, data_addr);  // producer operand (fig 7b: r1 = r4 + r6)
  pipe.set_reg(6, 0);
  for (int i = 0; i < 300 && !r.system->core(0).halted(); ++i) {
    r.system->tick();
  }
  EXPECT_TRUE(r.system->core(0).halted());
  r.chrono = &pipe.chronogram();
  return r;
}

/// load r3 = [r1+r2]; then a consumer or independent add; then halt.
isa::Program two_inst_program(bool dependent) {
  Assembler a("fig");
  const Addr buf = a.data_words({0xabcd, 0, 0, 0});
  (void)buf;
  a.lw(R{3}, R{1}, R{2});
  if (dependent) {
    a.add(R{5}, R{3}, R{4});
  } else {
    a.add(R{5}, R{6}, R{4});
  }
  a.halt();
  return a.finish();
}

Addr data_addr(const isa::Program& p) { return p.data_base; }

TEST(Chronograms, Fig2_BaselineLoadUseStall) {
  const auto p = two_inst_program(true);
  const auto r = run_chrono(EccPolicy::kNoEcc, p, data_addr(p));
  EXPECT_EQ(r.row(0), "F D RA Exe M Exc WB");
  EXPECT_EQ(r.row(1), "F D RA Exe Exe M Exc WB");
}

TEST(Chronograms, Fig3_ExtraCacheCycle) {
  const auto p = two_inst_program(true);
  const auto r = run_chrono(EccPolicy::kExtraCycle, p, data_addr(p));
  EXPECT_EQ(r.row(0), "F D RA Exe M M Exc WB");
  EXPECT_EQ(r.row(1), "F D RA Exe Exe Exe M Exc WB");
}

TEST(Chronograms, Fig4_ExtraStageDependent) {
  const auto p = two_inst_program(true);
  const auto r = run_chrono(EccPolicy::kExtraStage, p, data_addr(p));
  EXPECT_EQ(r.row(0), "F D RA Exe M ECC Exc WB");
  EXPECT_EQ(r.row(1), "F D RA Exe Exe Exe M ECC Exc WB");
}

TEST(Chronograms, Fig5_ExtraStageIndependent) {
  const auto p = two_inst_program(false);
  const auto r = run_chrono(EccPolicy::kExtraStage, p, data_addr(p));
  EXPECT_EQ(r.row(0), "F D RA Exe M ECC Exc WB");
  EXPECT_EQ(r.row(1), "F D RA Exe M ECC Exc WB");
}

TEST(Chronograms, Fig7a_LaecLookAhead) {
  const auto p = two_inst_program(true);
  const auto r = run_chrono(EccPolicy::kLaec, p, data_addr(p));
  // The anticipated load reads the DL1 in Exe and checks in M: the
  // consumer sees baseline (Fig. 2) timing despite full SECDED protection.
  EXPECT_EQ(r.row(0), "F D RA Exe M ECC Exc WB");
  EXPECT_EQ(r.row(1), "F D RA Exe Exe M Exc WB");
  const auto& stats = r.system->core(0).pipeline().stats();
  EXPECT_EQ(stats.value("laec_anticipated"), 1u);
}

isa::Program fig7b_program() {
  Assembler a("fig7b");
  a.data_words({0xabcd, 0, 0, 0});
  a.add(R{1}, R{4}, R{6});   // produces the load's address register
  a.lw(R{3}, R{1}, R{2});
  a.add(R{5}, R{3}, R{4});
  a.halt();
  return a.finish();
}

TEST(Chronograms, Fig7b_LaecBlockedByAddressProducer) {
  const auto p = fig7b_program();
  // EccSlotPolicy::kAlways matches the figure's rendering of the first ALU
  // row (it traverses the ECC slot); see EXPERIMENTS.md on the one-cell
  // discrepancy between Figs. 7a and 7b in the paper.
  const auto r =
      run_chrono(EccPolicy::kLaec, p, data_addr(p), EccSlotPolicy::kAlways);
  EXPECT_EQ(r.row(0), "F D RA Exe M ECC Exc WB");
  EXPECT_EQ(r.row(1), "F D RA Exe M ECC Exc WB");
  EXPECT_EQ(r.row(2), "F D RA Exe Exe Exe M ECC Exc WB");
  const auto& stats = r.system->core(0).pipeline().stats();
  EXPECT_EQ(stats.value("laec_anticipated"), 0u);
  EXPECT_EQ(stats.value("laec_data_hazard"), 1u);
}

TEST(Chronograms, Fig7b_StallPatternIdenticalUnderAutoSlotPolicy) {
  // The EC-slot rendering choice must not change any stall (the measured
  // quantity): the consumer's three Exe cycles are invariant.
  const auto p = fig7b_program();
  const auto r =
      run_chrono(EccPolicy::kLaec, p, data_addr(p), EccSlotPolicy::kAuto);
  EXPECT_EQ(r.row(2).substr(0, 22), "F D RA Exe Exe Exe M E");
}

TEST(Chronograms, LaecResourceHazard_ConsecutiveLoads) {
  // A non-anticipated load at distance 1 occupies the DL1 port from M; the
  // paper's resource-hazard rule stops the younger load from anticipating.
  Assembler a("res");
  a.data_words({1, 2, 3, 4, 5, 6, 7, 8});
  a.add(R{1}, R{4}, R{6});   // blocks load #1 (data hazard)
  a.lw(R{3}, R{1}, R{2});    // not anticipated
  a.lw(R{5}, R{1}, 4);       // resource hazard: previous load in M next cycle
  a.halt();
  const auto r = run_chrono(EccPolicy::kLaec, a.finish(),
                            isa::kDefaultDataBase);
  const auto& stats = r.system->core(0).pipeline().stats();
  EXPECT_EQ(stats.value("laec_data_hazard"), 1u);
  EXPECT_EQ(stats.value("laec_resource_hazard"), 1u);
}

TEST(Chronograms, GridRendererProducesAlignedRows) {
  const auto p = two_inst_program(true);
  const auto r = run_chrono(EccPolicy::kNoEcc, p, data_addr(p));
  const std::string grid = report::render_grid(
      r.system->core(0).pipeline().chronogram());
  EXPECT_NE(grid.find("r3 = load(r1+r2)"), std::string::npos);
  EXPECT_NE(grid.find("r5 = r3 + r4"), std::string::npos);
  EXPECT_NE(grid.find("WB"), std::string::npos);
}

TEST(Chronograms, PaperLiteralRuleAlsoBlocksFig7b) {
  const auto p = fig7b_program();
  const auto r = run_chrono(EccPolicy::kLaec, p, data_addr(p),
                            EccSlotPolicy::kAlways,
                            HazardRule::kPaperLiteral);
  const auto& stats = r.system->core(0).pipeline().stats();
  EXPECT_EQ(stats.value("laec_anticipated"), 0u);
}

}  // namespace
}  // namespace laec::cpu
