#include "isa/disasm.hpp"

#include <gtest/gtest.h>

namespace laec::isa {
namespace {

DecodedInst load_rr(u8 rd, u8 rs1, u8 rs2) {
  DecodedInst d;
  d.op = Op::kLw;
  d.rd = rd;
  d.rs1 = rs1;
  d.rs2 = rs2;
  return d;
}

TEST(Disasm, PaperStyleLoad) {
  EXPECT_EQ(paper_style(load_rr(3, 1, 2)), "r3 = load(r1+r2)");
}

TEST(Disasm, PaperStyleLoadImmediate) {
  DecodedInst d = load_rr(3, 1, 0);
  d.uses_imm = true;
  d.imm = 8;
  EXPECT_EQ(paper_style(d), "r3 = load(r1+8)");
}

TEST(Disasm, PaperStyleAdd) {
  DecodedInst d;
  d.op = Op::kAdd;
  d.rd = 5;
  d.rs1 = 3;
  d.rs2 = 4;
  EXPECT_EQ(paper_style(d), "r5 = r3 + r4");
}

TEST(Disasm, PaperStyleStore) {
  DecodedInst d;
  d.op = Op::kSw;
  d.rd = 7;
  d.rs1 = 1;
  d.rs2 = 2;
  EXPECT_EQ(paper_style(d), "store(r1+r2) = r7");
}

TEST(Disasm, ConventionalForms) {
  EXPECT_EQ(disassemble(load_rr(3, 1, 2)), "lw r3, [r1+r2]");
  DecodedInst d;
  d.op = Op::kSub;
  d.rd = 9;
  d.rs1 = 8;
  d.uses_imm = true;
  d.imm = -4;
  EXPECT_EQ(disassemble(d), "subi r9, r8, -4");
  DecodedInst b;
  b.op = Op::kBne;
  b.rs1 = 1;
  b.rs2 = 0;
  b.uses_imm = true;
  b.imm = -3;
  EXPECT_EQ(disassemble(b), "bne r1, r0, -3");
  DecodedInst h;
  h.op = Op::kHalt;
  EXPECT_EQ(disassemble(h), "halt");
}

TEST(Disasm, NegativeOffsetRendering) {
  DecodedInst d = load_rr(3, 1, 0);
  d.uses_imm = true;
  d.imm = -12;
  EXPECT_EQ(paper_style(d), "r3 = load(r1-12)");
}

}  // namespace
}  // namespace laec::isa
