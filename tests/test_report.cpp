#include "report/table.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "report/chronogram.hpp"
#include "report/sink.hpp"

namespace laec::report {
namespace {

// ------------------------------------------------------------ JSONL sink --

/// Minimal strict JSON parser for the flat {"key":"value",...} objects the
/// JSONL sink emits. Decodes \uXXXX escapes (including surrogate pairs) to
/// UTF-8. Returns nullopt on ANY malformed input — the round-trip tests
/// lean on that strictness.
std::optional<std::vector<std::pair<std::string, std::string>>> parse_jsonl(
    const std::string& line) {
  std::vector<std::pair<std::string, std::string>> fields;
  std::size_t i = 0;
  const auto fail = std::nullopt;
  const auto append_utf8 = [](std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  };
  const auto parse_hex4 = [&](unsigned& out) {
    if (i + 4 > line.size()) return false;
    out = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = line[i++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
      else return false;
    }
    return true;
  };
  const auto parse_string = [&](std::string& out) {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    while (i < line.size()) {
      const unsigned char c = static_cast<unsigned char>(line[i]);
      if (c == '"') {
        ++i;
        return true;
      }
      if (c < 0x20) return false;  // raw control char = malformed JSON
      if (c == '\\') {
        if (++i >= line.size()) return false;
        const char e = line[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned cp = 0;
            if (!parse_hex4(cp)) return false;
            if (cp >= 0xd800 && cp <= 0xdbff) {  // high surrogate
              if (i + 2 > line.size() || line[i] != '\\' || line[i + 1] != 'u')
                return false;
              i += 2;
              unsigned lo = 0;
              if (!parse_hex4(lo) || lo < 0xdc00 || lo > 0xdfff) return false;
              cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
            } else if (cp >= 0xdc00 && cp <= 0xdfff) {
              return false;  // lone low surrogate
            }
            append_utf8(out, cp);
            break;
          }
          default: return false;
        }
      } else {
        out += static_cast<char>(c);
        ++i;
      }
    }
    return false;  // unterminated
  };

  if (i >= line.size() || line[i] != '{') return fail;
  ++i;
  if (i < line.size() && line[i] == '}') return fields;  // empty object
  for (;;) {
    std::string key, value;
    if (!parse_string(key)) return fail;
    if (i >= line.size() || line[i] != ':') return fail;
    ++i;
    if (!parse_string(value)) return fail;
    fields.emplace_back(std::move(key), std::move(value));
    if (i >= line.size()) return fail;
    if (line[i] == ',') {
      ++i;
      continue;
    }
    if (line[i] == '}') return fields;
    return fail;
  }
}

/// Every row the sink emits must parse as strict JSON and decode back to
/// the input (with invalid UTF-8 bytes replaced by U+FFFD).
std::string sanitize(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size();) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    std::size_t len = 1;
    bool ok = c < 0x80;
    unsigned char lo = 0x80, hi = 0xbf;
    std::size_t cont = 0;
    if (c >= 0xc2 && c <= 0xdf) cont = 1;
    else if (c == 0xe0) cont = 2, lo = 0xa0;
    else if ((c >= 0xe1 && c <= 0xec) || c == 0xee || c == 0xef) cont = 2;
    else if (c == 0xed) cont = 2, hi = 0x9f;
    else if (c == 0xf0) cont = 3, lo = 0x90;
    else if (c >= 0xf1 && c <= 0xf3) cont = 3;
    else if (c == 0xf4) cont = 3, hi = 0x8f;
    if (!ok && cont > 0 && i + cont < s.size()) {
      const unsigned char c1 = static_cast<unsigned char>(s[i + 1]);
      ok = c1 >= lo && c1 <= hi;
      for (std::size_t k = 2; ok && k <= cont; ++k) {
        const unsigned char ck = static_cast<unsigned char>(s[i + k]);
        ok = ck >= 0x80 && ck <= 0xbf;
      }
      if (ok) len = cont + 1;
    }
    if (ok) {
      out.append(s, i, len);
      i += len;
    } else {
      out += "\xef\xbf\xbd";  // U+FFFD
      ++i;
    }
  }
  return out;
}

TEST(JsonLinesSink, EveryEmittedRowParsesAndRoundTrips) {
  const std::vector<std::string> headers = {"plain", "quote", "ctrl", "del",
                                            "utf8", "bad"};
  const std::vector<std::string> cells = {
      "hello world",
      "she said \"hi\" \\ done",
      std::string("a\x01"
                  "b\x1f"
                  "c\n\t\r"),
      std::string("x") + '\x7f' + "y",
      "caf\xc3\xa9 \xe6\xbc\xa2 \xf0\x9d\x84\x9e",  // é 漢 𝄞
      // Invalid UTF-8 zoo: lone continuation, truncated lead, overlong
      // C0 AF, surrogate half ED A0 80, out-of-range F5.
      std::string("a\x80"
                  "b\xc3") +
          "|\xc0\xaf|\xed\xa0\x80|\xf5"
          "z",
  };
  std::ostringstream os;
  JsonLinesWriter w(os);
  w.begin(headers);
  w.row(cells);
  const std::string out = os.str();
  ASSERT_FALSE(out.empty());
  ASSERT_EQ(out.back(), '\n');

  const auto parsed = parse_jsonl(out.substr(0, out.size() - 1));
  ASSERT_TRUE(parsed.has_value()) << out;
  ASSERT_EQ(parsed->size(), headers.size());
  for (std::size_t i = 0; i < headers.size(); ++i) {
    EXPECT_EQ((*parsed)[i].first, headers[i]);
    EXPECT_EQ((*parsed)[i].second, sanitize(cells[i])) << headers[i];
  }
  // The emitted line itself never carries a raw control byte or DEL.
  for (const char c : out) {
    const unsigned char uc = static_cast<unsigned char>(c);
    EXPECT_TRUE(uc >= 0x20 || c == '\n');
    EXPECT_NE(uc, 0x7fu);
  }
}

TEST(JsonLinesSink, ExhaustiveSingleBytesNeverEmitMalformedJson) {
  // Every possible single byte as a one-cell row: each line must parse.
  for (int b = 0; b < 256; ++b) {
    std::ostringstream os;
    JsonLinesWriter w(os);
    w.begin({"k"});
    w.row({std::string(1, static_cast<char>(b))});
    const std::string line = os.str();
    ASSERT_EQ(line.back(), '\n');
    const auto parsed = parse_jsonl(line.substr(0, line.size() - 1));
    ASSERT_TRUE(parsed.has_value()) << "byte " << b << ": " << line;
    ASSERT_EQ(parsed->size(), 1u);
    EXPECT_EQ((*parsed)[0].second,
              sanitize(std::string(1, static_cast<char>(b))))
        << "byte " << b;
  }
}

TEST(Table, TextLayoutAligns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_text();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, CsvEscapesNothingButJoins) {
  Table t({"x", "y", "z"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.to_csv(), "x,y,z\n1,2,3\n");
}

TEST(Table, NumberFormatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.173, 1), "17.3%");
  EXPECT_EQ(Table::pct(0.039, 1), "3.9%");
}

TEST(Chronogram, RecordsAndCompacts) {
  ChronogramRecorder rec;
  rec.set_enabled(true);
  rec.record(0, "load", 1, "F");
  rec.record(0, "load", 2, "D");
  rec.record(0, "load", 3, "Exe");
  rec.record(0, "load", 4, "Exe");
  EXPECT_EQ(rec.compact(0), "F D Exe Exe");
  EXPECT_EQ(rec.compact(99), "");
}

TEST(Chronogram, DisabledRecorderIgnores) {
  ChronogramRecorder rec;
  rec.record(0, "x", 1, "F");
  EXPECT_TRUE(rec.rows().empty());
}

TEST(Chronogram, EraseRemovesSquashedRows) {
  ChronogramRecorder rec;
  rec.set_enabled(true);
  rec.record(0, "a", 1, "F");
  rec.record(1, "b", 2, "F");
  rec.erase(1);
  EXPECT_EQ(rec.rows().size(), 1u);
  EXPECT_EQ(rec.compact(1), "");
}

TEST(Chronogram, LabelUpgradedAfterFetch) {
  ChronogramRecorder rec;
  rec.set_enabled(true);
  rec.record(0, "(fetch)", 1, "F");
  rec.record(0, "r1 = load(r2+r3)", 2, "F");
  EXPECT_EQ(rec.rows()[0].label, "r1 = load(r2+r3)");
}

TEST(Chronogram, GridHasCycleHeader) {
  ChronogramRecorder rec;
  rec.set_enabled(true);
  rec.record(0, "i0", 5, "F");
  rec.record(0, "i0", 6, "D");
  rec.record(1, "i1", 6, "F");
  const std::string g = render_grid(rec);
  EXPECT_NE(g.find("cycle"), std::string::npos);
  EXPECT_NE(g.find("i0"), std::string::npos);
  // Cycles re-based to 1 at the earliest recorded cycle.
  EXPECT_NE(g.find("1"), std::string::npos);
}

}  // namespace
}  // namespace laec::report
