#include "report/table.hpp"

#include <gtest/gtest.h>

#include "report/chronogram.hpp"

namespace laec::report {
namespace {

TEST(Table, TextLayoutAligns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_text();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(Table, CsvEscapesNothingButJoins) {
  Table t({"x", "y", "z"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.to_csv(), "x,y,z\n1,2,3\n");
}

TEST(Table, NumberFormatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.173, 1), "17.3%");
  EXPECT_EQ(Table::pct(0.039, 1), "3.9%");
}

TEST(Chronogram, RecordsAndCompacts) {
  ChronogramRecorder rec;
  rec.set_enabled(true);
  rec.record(0, "load", 1, "F");
  rec.record(0, "load", 2, "D");
  rec.record(0, "load", 3, "Exe");
  rec.record(0, "load", 4, "Exe");
  EXPECT_EQ(rec.compact(0), "F D Exe Exe");
  EXPECT_EQ(rec.compact(99), "");
}

TEST(Chronogram, DisabledRecorderIgnores) {
  ChronogramRecorder rec;
  rec.record(0, "x", 1, "F");
  EXPECT_TRUE(rec.rows().empty());
}

TEST(Chronogram, EraseRemovesSquashedRows) {
  ChronogramRecorder rec;
  rec.set_enabled(true);
  rec.record(0, "a", 1, "F");
  rec.record(1, "b", 2, "F");
  rec.erase(1);
  EXPECT_EQ(rec.rows().size(), 1u);
  EXPECT_EQ(rec.compact(1), "");
}

TEST(Chronogram, LabelUpgradedAfterFetch) {
  ChronogramRecorder rec;
  rec.set_enabled(true);
  rec.record(0, "(fetch)", 1, "F");
  rec.record(0, "r1 = load(r2+r3)", 2, "F");
  EXPECT_EQ(rec.rows()[0].label, "r1 = load(r2+r3)");
}

TEST(Chronogram, GridHasCycleHeader) {
  ChronogramRecorder rec;
  rec.set_enabled(true);
  rec.record(0, "i0", 5, "F");
  rec.record(0, "i0", 6, "D");
  rec.record(1, "i1", 6, "F");
  const std::string g = render_grid(rec);
  EXPECT_NE(g.find("cycle"), std::string::npos);
  EXPECT_NE(g.find("i0"), std::string::npos);
  // Cycles re-based to 1 at the earliest recorded cycle.
  EXPECT_NE(g.find("1"), std::string::npos);
}

}  // namespace
}  // namespace laec::report
