// Reliability campaign engine tests:
//  * Wilson interval / rate-estimator arithmetic (pure functions);
//  * trial outcome classification and its severity precedence;
//  * the Poisson -> per-access event probability bridge;
//  * campaign grid expansion and validation;
//  * determinism: identical FIT/CI rows at any thread count and across
//    the multi-process driver (--procs), the sweep-runner contract
//    extended to campaigns;
//  * CI width monotonically shrinking with the trial count, and the
//    sequential stopping rule ending cells early.
#include "reliability/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "reliability/stats.hpp"
#include "report/sink.hpp"

namespace laec::reliability {
namespace {

// ---------------------------------------------------------------- stats --

TEST(WilsonInterval, BracketsTheSampleProportionAndStaysIn01) {
  for (const auto& [f, n] : std::vector<std::pair<u64, u64>>{
           {0, 10}, {1, 10}, {5, 10}, {10, 10}, {3, 200}, {199, 200}}) {
    const Interval ci = wilson_interval(f, n, 0.95);
    const double p = static_cast<double>(f) / static_cast<double>(n);
    EXPECT_GE(ci.lo, 0.0);
    EXPECT_LE(ci.hi, 1.0);
    EXPECT_LE(ci.lo, p + 1e-12) << f << "/" << n;
    EXPECT_GE(ci.hi, p - 1e-12) << f << "/" << n;
    EXPECT_GT(ci.hi, ci.lo);
  }
}

TEST(WilsonInterval, ZeroFailuresGiveZeroLowerBoundAndPositiveUpper) {
  const Interval ci = wilson_interval(0, 50, 0.95);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_GT(ci.hi, 0.0);
  EXPECT_LT(ci.hi, 0.2);
}

TEST(WilsonInterval, MatchesKnownReference) {
  // 5/10 at 95%: the textbook Wilson interval is about [0.2366, 0.7634].
  const Interval ci = wilson_interval(5, 10, 0.95);
  EXPECT_NEAR(ci.lo, 0.2366, 5e-4);
  EXPECT_NEAR(ci.hi, 0.7634, 5e-4);
  // z for 95% two-sided.
  EXPECT_NEAR(z_for_confidence(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(z_for_confidence(0.99), 2.575829, 1e-5);
}

TEST(WilsonInterval, WidthShrinksMonotonicallyWithTrialCount) {
  // Fixed observed ratio, growing n: the interval must tighten every step.
  for (const double ratio : {0.0, 0.1, 0.5}) {
    double prev = 1.0;
    for (const u64 n : {10u, 40u, 160u, 640u, 2560u}) {
      const u64 f = static_cast<u64>(ratio * static_cast<double>(n));
      const double hw = wilson_interval(f, n, 0.95).half_width();
      EXPECT_LT(hw, prev) << "ratio " << ratio << " n " << n;
      prev = hw;
    }
  }
}

TEST(WilsonInterval, DegenerateInputsStayFiniteAndIn01) {
  // trials == 0: no information — the vacuous interval, not NaN (a NaN
  // half-width would make the sequential stopping rule's comparison
  // silently false forever).
  const Interval none = wilson_interval(0, 0, 0.95);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_DOUBLE_EQ(none.hi, 1.0);

  // successes == trials: p = 1 collapses p*(1-p) to zero; the interval
  // must still be finite, ordered, and pinned to 1 at the top.
  for (const u64 n : {1u, 2u, 50u}) {
    const Interval all = wilson_interval(n, n, 0.95);
    EXPECT_TRUE(std::isfinite(all.lo)) << n;
    EXPECT_GT(all.lo, 0.0) << n;
    EXPECT_LE(all.lo, 1.0) << n;
    EXPECT_DOUBLE_EQ(all.hi, 1.0) << n;
    EXPECT_LE(all.lo, all.hi) << n;
  }

  // successes > trials (a caller folding multi-event counters): saturated,
  // never NaN from a negative p*(1-p).
  const Interval over = wilson_interval(7, 3, 0.95);
  EXPECT_TRUE(std::isfinite(over.lo));
  EXPECT_DOUBLE_EQ(over.hi, 1.0);

  // Non-finite confidence degrades to the vacuous interval.
  for (const double conf : {std::nan(""), HUGE_VAL}) {
    const Interval bad = wilson_interval(5, 10, conf);
    EXPECT_DOUBLE_EQ(bad.lo, 0.0);
    EXPECT_DOUBLE_EQ(bad.hi, 1.0);
  }

  // And the stopping-rule consumer view: half_width is always finite.
  EXPECT_TRUE(std::isfinite(wilson_interval(0, 0, 0.95).half_width()));
  EXPECT_TRUE(std::isfinite(wilson_interval(4, 4, 0.95).half_width()));
}

TEST(RateEstimate, PFailIsReportedEvenWithoutATimeBase) {
  // Regression: the early return for device_hours <= 0 used to skip the
  // p_fail assignment, reporting 0 for cells with real failures.
  const RateEstimate e = estimate_rates(3, 10, 0.0, 0.95);
  EXPECT_DOUBLE_EQ(e.p_fail, 0.3);
  EXPECT_TRUE(std::isinf(e.mttf_hours));
  EXPECT_DOUBLE_EQ(e.fit, 0.0);
  EXPECT_GT(e.p_hi, e.p_lo);
}

TEST(RateEstimate, ZeroFailuresGiveZeroFitInfiniteMttfFiniteUpperBound) {
  const RateEstimate e = estimate_rates(0, 100, 1e6, 0.95);
  EXPECT_DOUBLE_EQ(e.fit, 0.0);
  EXPECT_TRUE(std::isinf(e.mttf_hours));
  EXPECT_GT(e.fit_hi, 0.0);
  EXPECT_DOUBLE_EQ(e.fit_lo, 0.0);
}

TEST(RateEstimate, FitAndMttfAreConsistent) {
  // 10 failures over 1e7 device-hours: 1 per 1e6 h = 1000 FIT.
  const RateEstimate e = estimate_rates(10, 100, 1e7, 0.95);
  EXPECT_NEAR(e.fit, 1000.0, 1e-9);
  EXPECT_NEAR(e.mttf_hours, 1e6, 1e-6);
  EXPECT_LT(e.fit_lo, e.fit);
  EXPECT_GT(e.fit_hi, e.fit);
}

// ------------------------------------------------------- classification --

runner::PointResult trial() {
  runner::PointResult r;
  r.stats.completed = true;
  r.self_check_ok = true;
  r.faults_injected = 1;
  return r;
}

TEST(ClassifyTrial, SeverityLadder) {
  EXPECT_EQ(classify_trial(trial()), TrialOutcome::kMasked);

  auto corrected = trial();
  corrected.stats.ecc_corrected = 2;
  EXPECT_EQ(classify_trial(corrected), TrialOutcome::kCorrected);

  auto l2c = trial();
  l2c.stats.l2_corrected = 1;
  EXPECT_EQ(classify_trial(l2c), TrialOutcome::kCorrected);

  auto due = trial();
  due.stats.ecc_corrected = 2;
  due.stats.ecc_detected_uncorrectable = 1;
  EXPECT_EQ(classify_trial(due), TrialOutcome::kDueRecovered);

  auto refetch = trial();
  refetch.stats.l1i_refetches = 1;
  EXPECT_EQ(classify_trial(refetch), TrialOutcome::kDueRecovered);

  auto sdc = trial();
  sdc.stats.ecc_corrected = 3;
  sdc.self_check_ok = false;
  EXPECT_EQ(classify_trial(sdc), TrialOutcome::kSdc);

  auto hang = trial();
  hang.stats.completed = false;
  EXPECT_EQ(classify_trial(hang), TrialOutcome::kSdc);

  auto loss = trial();
  loss.stats.data_loss_events = 1;
  loss.self_check_ok = false;  // detected loss beats silent corruption
  EXPECT_EQ(classify_trial(loss), TrialOutcome::kDataLoss);

  auto l2loss = trial();
  l2loss.stats.l2_data_loss_events = 1;
  EXPECT_EQ(classify_trial(l2loss), TrialOutcome::kDataLoss);

  EXPECT_TRUE(is_failure(TrialOutcome::kSdc));
  EXPECT_TRUE(is_failure(TrialOutcome::kDataLoss));
  EXPECT_FALSE(is_failure(TrialOutcome::kDueRecovered));
}

// ------------------------------------------------------- Poisson bridge --

TEST(EventProb, MonotoneInRateAccelAndWordWidth) {
  CampaignSpec spec;
  const double base = event_prob_for(spec, 1000.0, 39);
  EXPECT_GT(base, 0.0);
  EXPECT_LT(base, 1.0);
  EXPECT_GT(event_prob_for(spec, 2000.0, 39), base);
  EXPECT_GT(event_prob_for(spec, 1000.0, 45), base);
  CampaignSpec faster = spec;
  faster.accel *= 10.0;
  EXPECT_GT(event_prob_for(faster, 1000.0, 39), base);
  CampaignSpec idle = spec;
  idle.accel = 0.0;
  EXPECT_DOUBLE_EQ(event_prob_for(idle, 1000.0, 39), 0.0);
}

TEST(EventProb, TargetCodewordBitsFollowTheDeployedCodec) {
  core::SimConfig cfg;
  cfg.set_scheme("laec");
  EXPECT_EQ(target_codeword_bits(cfg), 39u);  // secded-39-32
  cfg.set_scheme("sec-daec-taec-45-32");
  EXPECT_EQ(target_codeword_bits(cfg), 45u);
  cfg.set_scheme("laec");
  cfg.inject_target = core::InjectTarget::kL1i;
  EXPECT_EQ(target_codeword_bits(cfg), 33u);  // parity-32
  cfg.inject_target = core::InjectTarget::kL2;
  EXPECT_EQ(target_codeword_bits(cfg), 39u);
}

// ------------------------------------------------------------ the grid --

TEST(CampaignGrid, ExpansionIsStableWorkloadSchemeRate) {
  CampaignGrid grid;
  grid.workloads({"rspeed", "puwmod"})
      .schemes({"laec", "sec-daec-39-32"})
      .rates({*tech_preset("40nm"), *tech_preset("28nm")});
  const auto cells = grid.cells();
  ASSERT_EQ(cells.size(), 8u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
  EXPECT_EQ(cells[0].workload, "rspeed");
  EXPECT_EQ(cells[0].scheme, "laec");
  EXPECT_EQ(cells[0].rate.label, "40nm");
  EXPECT_EQ(cells[1].rate.label, "28nm");
  EXPECT_EQ(cells[2].scheme, "sec-daec-39-32");
  EXPECT_EQ(cells[4].workload, "puwmod");
}

TEST(CampaignGrid, ValidatesSchemesAndRates) {
  CampaignGrid no_rates;
  no_rates.workloads({"rspeed"});
  EXPECT_THROW((void)no_rates.cells(), std::invalid_argument);

  CampaignGrid bad_scheme;
  bad_scheme.workloads({"rspeed"})
      .schemes({"no-such-codec"})
      .rates({*tech_preset("40nm")});
  EXPECT_THROW((void)bad_scheme.cells(), std::invalid_argument);

  CampaignGrid bad_rate;
  RatePoint r;
  r.label = "dead";
  r.fit_per_mbit = 0.0;
  bad_rate.workloads({"rspeed"}).rates({r});
  EXPECT_THROW((void)bad_rate.cells(), std::invalid_argument);
}

TEST(RateParsing, PresetsAndNumbers) {
  const ecc::MbuPatternTable mix{0.5, 0.5, 0.0, 0.0};
  const auto preset = parse_rate("28nm", mix);
  ASSERT_TRUE(preset.has_value());
  EXPECT_EQ(preset->label, "28nm");
  EXPECT_NE(preset->patterns, mix);  // presets carry their own mix

  const auto numeric = parse_rate("1500", mix);
  ASSERT_TRUE(numeric.has_value());
  EXPECT_DOUBLE_EQ(numeric->fit_per_mbit, 1500.0);
  EXPECT_EQ(numeric->patterns, mix);

  EXPECT_FALSE(parse_rate("13nm", mix).has_value());
  EXPECT_FALSE(parse_rate("-4", mix).has_value());
  EXPECT_FALSE(parse_rate("12x", mix).has_value());
}

// -------------------------------------------------- campaign execution --

/// A small but event-rich campaign: one cheap RMW kernel, two schemes,
/// one hot rate.
CampaignGrid small_grid() {
  CampaignGrid grid;
  grid.workloads({"rspeed"}).schemes({"laec", "sec-daec-39-32"});
  ecc::MbuPatternTable mix{0.2, 0.6, 0.15, 0.05};
  grid.rates({{"hot", 1000.0, mix}});
  return grid;
}

CampaignSpec small_spec(unsigned trials) {
  CampaignSpec spec;
  spec.accel = 2e17;  // rspeed is load-light; make events actually land
  spec.trials = trials;
  spec.base.dl1_size_bytes = 2 * 1024;
  return spec;
}

/// Render a whole campaign as CSV text.
std::string campaign_csv(const CampaignGrid& grid, const CampaignSpec& spec,
                         unsigned threads) {
  std::ostringstream out;
  report::CsvWriter sink(out);
  CampaignOptions opts;
  opts.threads = threads;
  opts.sink = &sink;
  (void)run_campaign(grid, spec, opts);
  return out.str();
}

TEST(Campaign, RowsAreByteIdenticalAtOneAndEightThreads) {
  const auto grid = small_grid();
  const auto spec = small_spec(10);
  const std::string t1 = campaign_csv(grid, spec, 1);
  const std::string t8 = campaign_csv(grid, spec, 8);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t8);
}

TEST(Campaign, ProcsMergeByteIdenticalToSingleProcess) {
  const auto cells = small_grid().cells();
  const auto spec = small_spec(10);
  std::string out[2];
  for (int i = 0; i < 2; ++i) {
    CampaignProcOptions popts;
    popts.procs = i == 0 ? 1 : 4;
    popts.worker.threads = 1;
    std::ostringstream os;
    const auto sum = run_campaign_procs(cells, spec, popts, os);
    EXPECT_EQ(sum.failed_workers, 0u);
    EXPECT_EQ(sum.cells_run, cells.size());
    out[i] = os.str();
  }
  EXPECT_FALSE(out[0].empty());
  EXPECT_EQ(out[0], out[1]);
}

TEST(Campaign, ShardsPartitionTheCells) {
  const auto cells = small_grid().cells();  // 2 cells
  const auto spec = small_spec(4);
  CampaignOptions a, b;
  a.shard_count = b.shard_count = 2;
  a.shard_index = 0;
  b.shard_index = 1;
  const auto ra = run_campaign(cells, spec, a);
  const auto rb = run_campaign(cells, spec, b);
  EXPECT_EQ(ra.cells_run + rb.cells_run, cells.size());
  ASSERT_EQ(ra.cells.size(), 1u);
  ASSERT_EQ(rb.cells.size(), 1u);
  EXPECT_NE(ra.cells[0].cell.index, rb.cells[0].cell.index);
}

TEST(Campaign, EventsScaleWithTheRateAxis) {
  CampaignGrid grid;
  grid.workloads({"rspeed"}).schemes({"laec"});
  ecc::MbuPatternTable mix{1.0, 0.0, 0.0, 0.0};
  grid.rates({{"cool", 10.0, mix}, {"hot", 1000.0, mix}});
  const auto sum = run_campaign(grid, small_spec(8));
  ASSERT_EQ(sum.cells.size(), 2u);
  EXPECT_LT(sum.cells[0].events, sum.cells[1].events);
  EXPECT_GT(sum.cells[1].events, 0u);
}

TEST(EventProb, LambdaBacksTheSaturatingProbability) {
  CampaignSpec spec;
  const double lam = event_lambda_for(spec, 1000.0, 39);
  EXPECT_GT(lam, 0.0);
  EXPECT_NEAR(event_prob_for(spec, 1000.0, 39), -std::expm1(-lam), 1e-15);
  // Extreme acceleration: probability saturates to exactly 1, the lambda
  // keeps growing (it is what preserves the multi-event information).
  CampaignSpec extreme = spec;
  extreme.accel = 1e30;
  EXPECT_DOUBLE_EQ(event_prob_for(extreme, 1000.0, 39), 1.0);
  EXPECT_GT(event_lambda_for(extreme, 1000.0, 39), 1.0);
}

TEST(Campaign, ExtremeAccelSurfacesDroppedEventsInsteadOfSilentTruncation) {
  // Acceleration high enough that every access window holds a pile-up of
  // events far past the per-access flip budget. The campaign must stay
  // finite and deterministic, deliver what fits, and report the surplus in
  // the events_dropped column rather than silently clipping the rate.
  const auto grid = small_grid();
  CampaignSpec spec = small_spec(6);
  spec.accel = 1e30;
  const auto sum = run_campaign(grid, spec);
  ASSERT_EQ(sum.cells.size(), 2u);
  for (const auto& c : sum.cells) {
    EXPECT_GT(c.events, 0u) << c.cell.scheme;
    EXPECT_GT(c.events_dropped, 0u) << c.cell.scheme;
    // Estimators stay well-defined at the saturation point.
    EXPECT_TRUE(std::isfinite(c.est.p_fail)) << c.cell.scheme;
    EXPECT_TRUE(std::isfinite(c.est.p_lo)) << c.cell.scheme;
    EXPECT_TRUE(std::isfinite(c.est.p_hi)) << c.cell.scheme;
    EXPECT_TRUE(std::isfinite(c.avf)) << c.cell.scheme;
    // The column renders.
    const auto row = campaign_to_row(c);
    EXPECT_EQ(row.size(), campaign_row_headers().size());
  }
  // Determinism holds under saturation too.
  EXPECT_EQ(campaign_csv(grid, spec, 1), campaign_csv(grid, spec, 8));
}

TEST(Campaign, CiWidthShrinksWithTrialCount) {
  // The ISSUE's monotonicity claim, end to end: the same cell at 4x the
  // trials must report a tighter confidence interval.
  const auto grid = small_grid();
  const auto s16 = run_campaign(grid, small_spec(16));
  const auto s64 = run_campaign(grid, small_spec(64));
  ASSERT_EQ(s16.cells.size(), s64.cells.size());
  for (std::size_t i = 0; i < s16.cells.size(); ++i) {
    const auto hw = [](const CellResult& c) {
      return (c.est.p_hi - c.est.p_lo) / 2.0;
    };
    EXPECT_LT(hw(s64.cells[i]), hw(s16.cells[i])) << "cell " << i;
    EXPECT_EQ(s16.cells[i].trials, 16u);
    EXPECT_EQ(s64.cells[i].trials, 64u);
  }
}

TEST(Campaign, StoppingRuleEndsCellsEarly) {
  const auto grid = small_grid();
  CampaignSpec spec = small_spec(64);
  spec.min_trials = 4;
  spec.batch = 4;
  spec.target_half_width = 0.45;  // generous: satisfied at 4 trials
  const auto sum = run_campaign(grid, spec);
  for (const auto& c : sum.cells) {
    EXPECT_EQ(c.trials, 4u) << c.cell.scheme;
  }
  // Disarmed rule: every cell runs the full budget.
  spec.target_half_width = 0.0;
  spec.trials = 8;
  const auto full = run_campaign(grid, spec);
  for (const auto& c : full.cells) {
    EXPECT_EQ(c.trials, 8u);
  }
}

TEST(Campaign, RowSchemaCarriesTheEstimators) {
  const auto& h = campaign_row_headers();
  for (const char* col :
       {"workload", "ecc", "rate", "trials", "fit", "fit_lo", "fit_hi",
        "mttf_hours", "avf", "ci_lo", "ci_hi", "sdc", "data_loss",
        "events_dropped", "pruned", "mean_exposure_cycles"}) {
    EXPECT_NE(std::find(h.begin(), h.end(), col), h.end()) << col;
  }
  const auto sum = run_campaign(small_grid(), small_spec(4));
  ASSERT_FALSE(sum.cells.empty());
  const auto row = campaign_to_row(sum.cells[0]);
  EXPECT_EQ(row.size(), h.size());
}

}  // namespace
}  // namespace laec::reliability
