// Snapshot fast-forward equivalence: `fast_forward = true` (restore a
// golden snapshot and simulate only the suffix of each live trial) and
// `fast_forward = false` (simulate every trial from reset) must produce
// byte-identical CSV rows and identical severity totals. Same contract
// shape as the pruning, LUT-decode and fast-path equivalence suites; the
// snapshot frame itself is covered by test_snapshot.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ecc/registry.hpp"
#include "reliability/campaign.hpp"
#include "report/sink.hpp"

namespace laec::reliability {
namespace {

CampaignGrid grid_for(const std::vector<std::string>& schemes,
                      const ecc::MbuPatternTable& mix,
                      const std::string& workload = "rspeed") {
  CampaignGrid grid;
  grid.workloads({workload}).schemes(schemes);
  grid.rates({{"hot", 1000.0, mix}});
  return grid;
}

CampaignSpec spec_for(core::InjectTarget target, double accel,
                      unsigned trials = 6) {
  CampaignSpec spec;
  spec.accel = accel;
  spec.trials = trials;
  spec.target = target;
  spec.base.dl1_size_bytes = 2 * 1024;
  return spec;
}

std::string campaign_csv(const CampaignGrid& grid, CampaignSpec spec,
                         bool ff, unsigned threads = 1) {
  spec.fast_forward = ff;
  std::ostringstream out;
  report::CsvWriter sink(out);
  CampaignOptions opts;
  opts.threads = threads;
  opts.sink = &sink;
  (void)run_campaign(grid, spec, opts);
  return out.str();
}

/// Run both modes and assert rows byte-identical plus severity totals
/// equal field by field. Returns the fast-forwarded total.
u64 expect_equivalent(const CampaignGrid& grid, const CampaignSpec& spec,
                      const std::string& label) {
  CampaignSpec ff = spec, ref = spec;
  ff.fast_forward = true;
  ref.fast_forward = false;
  const auto a = run_campaign(grid, ff);
  const auto b = run_campaign(grid, ref);
  EXPECT_EQ(a.cells.size(), b.cells.size()) << label;
  u64 ff_total = 0;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const auto& x = a.cells[i];
    const auto& y = b.cells[i];
    const std::string at = label + " cell " + std::to_string(i);
    EXPECT_EQ(campaign_to_row(x), campaign_to_row(y)) << at;
    EXPECT_EQ(x.trials, y.trials) << at;
    EXPECT_EQ(x.events, y.events) << at;
    EXPECT_EQ(x.events_dropped, y.events_dropped) << at;
    EXPECT_EQ(x.masked, y.masked) << at;
    EXPECT_EQ(x.corrected, y.corrected) << at;
    EXPECT_EQ(x.due_recovered, y.due_recovered) << at;
    EXPECT_EQ(x.sdc, y.sdc) << at;
    EXPECT_EQ(x.data_loss, y.data_loss) << at;
    EXPECT_EQ(x.total_cycles, y.total_cycles) << at;
    EXPECT_EQ(x.pruned, y.pruned) << at;
    // Bookkept in both modes; only whether the restore HAPPENS differs.
    EXPECT_EQ(x.fast_forwarded, y.fast_forwarded) << at;
    EXPECT_EQ(x.cycles_skipped, y.cycles_skipped) << at;
    EXPECT_DOUBLE_EQ(x.device_hours, y.device_hours) << at;
    // Pruned trials are never counted fast-forwarded, so the two can
    // never overlap past the cell's trial count.
    EXPECT_LE(x.pruned + x.fast_forwarded, x.trials) << at;
    ff_total += x.fast_forwarded;
  }
  return ff_total;
}

// ------------------------------------------------------------- tier 1 ----

// accel high enough that most storms carry live deliveries: the restore
// path carries real weight at this operating point. One test per inject
// target; the DL1 one additionally asserts the point actually
// fast-forwards (the L1I/L2 windows of this workload may prune fully).
TEST(FfEquiv, Dl1TargetAtASaturatedOperatingPoint) {
  // puwmod closes enough DL1 windows that the default snapshot cadence
  // lands several checkpoints before typical first deliveries.
  const ecc::MbuPatternTable mix{0.4, 0.4, 0.1, 0.1};
  const auto grid = grid_for({"laec", "sec-daec-39-32"}, mix, "puwmod");
  const u64 ff = expect_equivalent(
      grid, spec_for(core::InjectTarget::kDl1, 1e16), "target=dl1");
  // The operating point actually fast-forwards — otherwise this test is
  // vacuous.
  EXPECT_GT(ff, 0u);
}

TEST(FfEquiv, L1iTargetAtALiveOperatingPoint) {
  // The L1I closes a window per resident-line fetch — millions per run —
  // so full saturation would deliver an upset to nearly every fetch and
  // each delivery costs a detect-and-refetch round trip (hundred-second
  // trials). A lower acceleration keeps a sprinkling of live deliveries,
  // which is all the equivalence contract needs.
  const ecc::MbuPatternTable mix{0.4, 0.4, 0.1, 0.1};
  const auto grid = grid_for({"laec", "sec-daec-39-32"}, mix);
  (void)expect_equivalent(grid, spec_for(core::InjectTarget::kL1i, 1e12),
                          "target=l1i");
}

TEST(FfEquiv, L2TargetAtASaturatedOperatingPoint) {
  const ecc::MbuPatternTable mix{0.4, 0.4, 0.1, 0.1};
  const auto grid = grid_for({"laec", "sec-daec-39-32"}, mix);
  (void)expect_equivalent(grid, spec_for(core::InjectTarget::kL2, 1e16),
                          "target=l2");
}

TEST(FfEquiv, PruningHeavyOperatingPointStillIdentical) {
  // Low acceleration: pruning classifies most trials analytically and the
  // few simulated ones still restore. Fast-forward must compose with
  // pruning without disturbing either bookkeeping column.
  const ecc::MbuPatternTable mix{0.4, 0.4, 0.1, 0.1};
  const auto grid = grid_for({"laec", "sec-daec-39-32"}, mix);
  (void)expect_equivalent(grid, spec_for(core::InjectTarget::kDl1, 1e15),
                          "pruning-heavy");
}

TEST(FfEquiv, NoPruneModeStillIdentical) {
  // With pruning off every trial simulates; prunable trials resume from the
  // LAST snapshot (pure speed, not counted fast-forwarded). Rows must stay
  // identical across the full 2x2 of {prune, ff}.
  const ecc::MbuPatternTable mix{0.4, 0.4, 0.1, 0.1};
  const auto grid = grid_for({"laec", "secded-39-32"}, mix);
  CampaignSpec spec = spec_for(core::InjectTarget::kDl1, 1e16, 8);
  std::string ref;
  for (const bool prune : {true, false}) {
    for (const bool ff : {true, false}) {
      CampaignSpec s = spec;
      s.prune = prune;
      const std::string csv = campaign_csv(grid, s, ff);
      if (ref.empty()) {
        ref = csv;
        EXPECT_FALSE(ref.empty());
      } else {
        EXPECT_EQ(csv, ref) << "prune=" << prune << " ff=" << ff;
      }
    }
  }
}

TEST(FfEquiv, SnapshotCadenceDoesNotChangeRows) {
  // The snapshot schedule is an implementation knob, not a statistics knob:
  // any cadence (including 0 = capture disabled) yields identical rows.
  const ecc::MbuPatternTable mix{0.5, 0.5, 0.0, 0.0};
  const auto grid = grid_for({"laec"}, mix);
  CampaignSpec spec = spec_for(core::InjectTarget::kDl1, 1e16, 8);
  spec.snapshot_every = 0;  // no snapshots: ff has nothing to restore
  const std::string ref = campaign_csv(grid, spec, /*ff=*/true);
  for (const unsigned every : {64u, 256u, 4096u}) {
    CampaignSpec s = spec;
    s.snapshot_every = every;
    EXPECT_EQ(campaign_csv(grid, s, true), ref) << "every=" << every;
    EXPECT_EQ(campaign_csv(grid, s, false), ref) << "every=" << every;
  }
  // A tiny byte budget forces keep-every-k thinning mid-run; still
  // identical rows (fewer restores, same statistics).
  CampaignSpec s = spec;
  s.snapshot_every = 64;
  s.snapshot_mem_mb = 1;
  EXPECT_EQ(campaign_csv(grid, s, true), ref);
}

TEST(FfEquiv, CsvBytesIdenticalAcrossThreadCounts) {
  const ecc::MbuPatternTable mix{0.5, 0.5, 0.0, 0.0};
  const auto grid = grid_for({"laec", "secded-39-32"}, mix);
  const auto spec = spec_for(core::InjectTarget::kDl1, 1e16, 10);
  const std::string ref = campaign_csv(grid, spec, /*ff=*/false, 1);
  EXPECT_FALSE(ref.empty());
  EXPECT_EQ(campaign_csv(grid, spec, true, 1), ref);
  EXPECT_EQ(campaign_csv(grid, spec, true, 8), ref);
}

TEST(FfEquiv, ProcsMergeIdenticalAcrossFfModes) {
  const ecc::MbuPatternTable mix{0.5, 0.5, 0.0, 0.0};
  const auto cells = grid_for({"laec", "secded-39-32"}, mix).cells();
  CampaignSpec spec = spec_for(core::InjectTarget::kDl1, 1e16, 8);
  std::string out[2];
  for (int i = 0; i < 2; ++i) {
    spec.fast_forward = i == 0;
    CampaignProcOptions popts;
    popts.procs = 2;
    popts.worker.threads = 1;
    std::ostringstream os;
    const auto sum = run_campaign_procs(cells, spec, popts, os);
    EXPECT_EQ(sum.failed_workers, 0u);
    out[i] = os.str();
  }
  EXPECT_FALSE(out[0].empty());
  EXPECT_EQ(out[0], out[1]);
}

}  // namespace
}  // namespace laec::reliability
