// System-level tests: multicore assembly, bus contention, WT-vs-WB traffic
// (the §II motivation), and final-state flushing.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"
#include "workloads/eembc.hpp"

namespace laec::sim {
namespace {

using cpu::EccPolicy;
using isa::Assembler;
using isa::R;

isa::Program store_heavy_program(int iterations) {
  Assembler a("stores");
  const Addr buf = a.data_fill(256, 0);
  a.li(R{1}, buf);
  a.li(R{2}, static_cast<u32>(iterations));
  a.label("loop");
  a.andi(R{3}, R{2}, 0xff);
  a.slli(R{4}, R{3}, 2);
  a.add(R{4}, R{1}, R{4});
  a.sw(R{2}, R{4}, 0);
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "loop");
  a.halt();
  return a.finish();
}

u64 run_with_traffic(EccPolicy ecc, unsigned co_runners, int iterations) {
  core::SimConfig cfg = test::test_config(ecc);
  for (unsigned i = 0; i < co_runners; ++i) {
    TrafficPattern t;
    t.gap_cycles = 0;  // saturating co-runner
    t.op = mem::BusOp::kReadLine;
    t.base = 0x4000'0000 + i * 0x10'0000;
    cfg.traffic.push_back(t);
  }
  auto r = test::run_keep_system(cfg, store_heavy_program(iterations));
  EXPECT_TRUE(r.stats.completed);
  return r.stats.cycles;
}

TEST(System, WtStoresGenerateBusTraffic) {
  const auto p = store_heavy_program(200);
  auto wb = test::run_keep_system(test::test_config(EccPolicy::kLaec), p);
  const auto p2 = store_heavy_program(200);
  auto wt = test::run_keep_system(test::test_config(EccPolicy::kWtParity), p2);
  // Every WT store crosses the bus; WB coalesces into rare line evictions.
  EXPECT_GT(wt.stats.bus_transactions, wb.stats.bus_transactions * 5);
}

TEST(System, ContentionHurtsWtMuchMoreThanWb) {
  // The §II.A motivation (ref [9]): with contending cores on the bus, the
  // WT configuration degrades far more than WB.
  const u64 wb_solo = run_with_traffic(EccPolicy::kLaec, 0, 300);
  const u64 wb_cont = run_with_traffic(EccPolicy::kLaec, 3, 300);
  const u64 wt_solo = run_with_traffic(EccPolicy::kWtParity, 0, 300);
  const u64 wt_cont = run_with_traffic(EccPolicy::kWtParity, 3, 300);
  const double wb_slow = static_cast<double>(wb_cont) / wb_solo;
  const double wt_slow = static_cast<double>(wt_cont) / wt_solo;
  EXPECT_GT(wt_slow, wb_slow * 1.5);
}

TEST(System, MultipleCoresInstantiateAndRun) {
  core::SimConfig cfg = test::test_config(EccPolicy::kLaec);
  cfg.num_cores = 4;
  sim::System sys(core::make_system_config(cfg));
  EXPECT_EQ(sys.num_cores(), 4u);
  Assembler a("tiny");
  a.li(R{1}, 5);
  a.halt();
  sys.load_program(a.finish(), 0);
  const auto r = sys.run();
  EXPECT_TRUE(r.completed);
}

TEST(System, ReadWordFinalFlushesDirtyLines) {
  Assembler a("dirty");
  const Addr buf = a.data_fill(8, 0);
  a.li(R{1}, buf);
  a.li(R{2}, 0xcafe);
  a.sw(R{2}, R{1}, 0);
  a.halt();
  auto cfg = test::test_config(EccPolicy::kLaec);  // write-back: stays dirty
  sim::System sys(core::make_system_config(cfg));
  const auto p = a.finish();
  sys.load_program(p);
  sys.run();
  // Before flushing, memory is stale; read_word_final must flush.
  EXPECT_EQ(sys.memsys().memory().read_u32(buf), 0u);
  EXPECT_EQ(sys.read_word_final(buf), 0xcafeu);
  EXPECT_EQ(sys.memsys().memory().read_u32(buf), 0xcafeu);
}

TEST(System, TrafficGeneratorsCompleteTransactions) {
  core::SimConfig cfg = test::test_config(EccPolicy::kNoEcc);
  TrafficPattern t;
  t.gap_cycles = 5;
  cfg.traffic.push_back(t);
  sim::System sys(core::make_system_config(cfg));
  Assembler a("spin");
  a.li(R{1}, 2000);
  a.label("l");
  a.subi(R{1}, R{1}, 1);
  a.bne(R{1}, R{0}, "l");
  a.halt();
  sys.load_program(a.finish());
  sys.run();
  EXPECT_GT(sys.memsys().bus().stats().value("transactions"), 10u);
}

TEST(System, KernelUnaffectedArchitecturallyByContention) {
  const auto k = workloads::kernel_by_name("iirflt").build();
  core::SimConfig cfg = test::test_config(EccPolicy::kLaec);
  TrafficPattern t;
  t.gap_cycles = 0;
  cfg.traffic.push_back(t);
  auto r = test::run_keep_system(cfg, k.program);
  ASSERT_TRUE(r.stats.completed);
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

}  // namespace
}  // namespace laec::sim
