// Checkpoint/resume: the hard contract is that an interrupted-then-resumed
// campaign emits byte-identical rows to an uninterrupted run — across one
// interruption, across an interruption at EVERY round boundary, and with
// the sequential stopping rule ending cells early. Plus the durability
// guards: corrupt / truncated / wrong-version / wrong-identity checkpoint
// files are rejected loudly.
#include "service/checkpoint.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "reliability/campaign.hpp"
#include "service/job.hpp"
#include "service/wire.hpp"

namespace laec::service {
namespace {

using reliability::CampaignCell;
using reliability::CampaignOptions;
using reliability::CampaignSpec;
using reliability::CellProgress;

/// Unique temp file per test, removed on destruction.
struct TempPath {
  std::string path;
  explicit TempPath(const char* tag) {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("laec-ckpt-test-" + std::string(tag) + "-" +
             std::to_string(::getpid()) + "-" + std::to_string(counter++)))
               .string();
  }
  ~TempPath() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
};

std::vector<CellProgress> sample_cells() {
  std::vector<CellProgress> cells(2);
  cells[0].index = 0;
  cells[0].done = 12;
  cells[0].finished = true;
  cells[0].trials = 12;
  cells[0].masked = 5;
  cells[0].corrected = 4;
  cells[0].sdc = 3;
  cells[0].events = 17;
  cells[0].total_cycles = 123456789;
  cells[0].pruned = 7;
  cells[0].device_hours = 0.1 + 0.2;  // not exactly representable
  cells[1].index = 3;
  cells[1].done = 4;
  cells[1].trials = 4;
  cells[1].masked = 4;
  cells[1].device_hours = 1e-300;  // tiny: formatting would destroy it
  return cells;
}

TEST(Checkpoint, SaveLoadRoundTripsEveryFieldBitExactly) {
  TempPath tmp("roundtrip");
  const auto cells = sample_cells();
  save_checkpoint(tmp.path, 0xfeedbeef, cells);
  const auto loaded = load_checkpoint(tmp.path, 0xfeedbeef);
  ASSERT_EQ(loaded.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(loaded[i].index, cells[i].index);
    EXPECT_EQ(loaded[i].done, cells[i].done);
    EXPECT_EQ(loaded[i].finished, cells[i].finished);
    EXPECT_EQ(loaded[i].trials, cells[i].trials);
    EXPECT_EQ(loaded[i].events, cells[i].events);
    EXPECT_EQ(loaded[i].masked, cells[i].masked);
    EXPECT_EQ(loaded[i].corrected, cells[i].corrected);
    EXPECT_EQ(loaded[i].sdc, cells[i].sdc);
    EXPECT_EQ(loaded[i].total_cycles, cells[i].total_cycles);
    EXPECT_EQ(loaded[i].pruned, cells[i].pruned);
    // Bit-exact, not approximately equal: resumed rows must be
    // byte-identical, and device_hours feeds FIT/MTTF columns.
    EXPECT_EQ(std::bit_cast<u64>(loaded[i].device_hours),
              std::bit_cast<u64>(cells[i].device_hours));
  }
}

TEST(Checkpoint, RejectsMissingCorruptTruncatedAndForeignFiles) {
  TempPath tmp("guards");
  EXPECT_THROW((void)load_checkpoint(tmp.path, 1), WireError);  // missing

  save_checkpoint(tmp.path, 1, sample_cells());
  std::string bytes;
  {
    std::ifstream in(tmp.path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  const auto write_bytes = [&](const std::string& b) {
    std::ofstream out(tmp.path, std::ios::binary | std::ios::trunc);
    out.write(b.data(), static_cast<std::streamsize>(b.size()));
  };

  {  // wrong identity
    EXPECT_THROW((void)load_checkpoint(tmp.path, 2), WireError);
  }
  {  // bad magic
    std::string bad = bytes;
    bad[0] = 'X';
    write_bytes(bad);
    EXPECT_THROW((void)load_checkpoint(tmp.path, 1), WireError);
  }
  {  // flipped payload bit -> checksum mismatch
    std::string bad = bytes;
    bad[bytes.size() - 3] = static_cast<char>(bad[bytes.size() - 3] ^ 1);
    write_bytes(bad);
    EXPECT_THROW((void)load_checkpoint(tmp.path, 1), WireError);
  }
  {  // truncation
    write_bytes(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW((void)load_checkpoint(tmp.path, 1), WireError);
  }
  {  // unsupported version: rebuild with version+1 and a VALID checksum,
     // so the version check itself is what fires
    ByteWriter payload;
    payload.put_u32(kCheckpointVersion + 1);
    payload.put_string("");  // shape does not matter past the version
    ByteWriter file;
    for (const char c : kCheckpointMagic) file.put_u8(static_cast<u8>(c));
    file.put_u64(fnv1a(payload.bytes()));
    std::string all = file.take();
    all += payload.bytes();
    write_bytes(all);
    EXPECT_THROW((void)load_checkpoint(tmp.path, 1), WireError);
  }
}

TEST(Checkpoint, SaveIsAtomicViaRename) {
  TempPath tmp("atomic");
  save_checkpoint(tmp.path, 7, sample_cells());
  EXPECT_FALSE(std::filesystem::exists(tmp.path + ".tmp"));
  EXPECT_TRUE(std::filesystem::exists(tmp.path));
}

// --- resume byte-identity ---------------------------------------------------

struct CampaignSetup {
  std::vector<CampaignCell> cells;
  CampaignSpec spec;
  u64 identity = 0;
};

CampaignSetup small_campaign(double target_half_width = 0.0) {
  reliability::CampaignGrid grid;
  grid.workloads({"a2time"}).schemes({"laec", "sec-daec-39-32"});
  grid.rates({*reliability::tech_preset("40nm")});
  CampaignSetup s;
  s.cells = grid.cells();
  s.spec.trials = 12;
  s.spec.min_trials = 4;
  s.spec.batch = 4;
  s.spec.target_half_width = target_half_width;
  CampaignJob job;
  job.spec = s.spec;
  job.cells = s.cells;
  s.identity = campaign_identity(job);
  return s;
}

std::string run_to_csv(const CampaignSetup& s, const CampaignOptions& base) {
  std::ostringstream out;
  report::CsvWriter w(out);
  CampaignOptions o = base;
  o.threads = 1;
  o.sink = &w;
  const auto sum = reliability::run_campaign(s.cells, s.spec, o);
  EXPECT_FALSE(sum.interrupted);
  return out.str();
}

/// Run the campaign but stop after `rounds` rounds, checkpointing every
/// round. Returns true if it was actually interrupted (false = finished).
bool run_interrupted(const CampaignSetup& s, const std::string& ckpt,
                     unsigned rounds, bool resume_first) {
  std::ostringstream out;
  report::CsvWriter w(out);
  CampaignOptions o;
  o.threads = 1;
  o.sink = &w;
  std::vector<CellProgress> restored;
  if (resume_first) {
    restored = load_checkpoint(ckpt, s.identity);
    o.resume_from = &restored;
  }
  unsigned seen = 0;
  o.on_round = [&](const std::vector<CellProgress>& p) {
    ++seen;
    save_checkpoint(ckpt, s.identity, p);
  };
  o.should_stop = [&] { return seen >= rounds; };
  const auto sum = reliability::run_campaign(s.cells, s.spec, o);
  if (sum.interrupted) {
    EXPECT_TRUE(out.str().empty()) << "interrupted runs must emit no rows";
  }
  return sum.interrupted;
}

std::string resume_to_csv(const CampaignSetup& s, const std::string& ckpt) {
  std::ostringstream out;
  report::CsvWriter w(out);
  CampaignOptions o;
  o.threads = 1;
  o.sink = &w;
  const auto restored = load_checkpoint(ckpt, s.identity);
  o.resume_from = &restored;
  const auto sum = reliability::run_campaign(s.cells, s.spec, o);
  EXPECT_FALSE(sum.interrupted);
  return out.str();
}

TEST(CheckpointResume, InterruptedThenResumedIsByteIdentical) {
  const auto s = small_campaign();
  const std::string base = run_to_csv(s, {});

  TempPath ckpt("resume1");
  ASSERT_TRUE(run_interrupted(s, ckpt.path, 1, false));
  EXPECT_EQ(resume_to_csv(s, ckpt.path), base);
}

TEST(CheckpointResume, InterruptingEveryRoundStillConverges) {
  // Kill-and-resume after every single round: each resume advances one
  // more round, and the final emission is still byte-identical.
  const auto s = small_campaign();
  const std::string base = run_to_csv(s, {});

  TempPath ckpt("resume-all");
  ASSERT_TRUE(run_interrupted(s, ckpt.path, 1, false));
  int safety = 0;
  while (run_interrupted(s, ckpt.path, 1, true)) {
    ASSERT_LT(++safety, 64) << "campaign never converged";
  }
  EXPECT_EQ(resume_to_csv(s, ckpt.path), base);
}

TEST(CheckpointResume, StoppingRuleCellsSurviveTheInterrupt) {
  // A loose CI target makes cells finish at different rounds; the cursors
  // must preserve each cell's own stopping trajectory.
  const auto s = small_campaign(0.45);
  const std::string base = run_to_csv(s, {});

  TempPath ckpt("resume-ci");
  if (!run_interrupted(s, ckpt.path, 1, false)) {
    GTEST_SKIP() << "every cell stopped in round one; nothing to resume";
  }
  EXPECT_EQ(resume_to_csv(s, ckpt.path), base);
}

TEST(CheckpointResume, FullyFinishedCheckpointJustReEmits) {
  const auto s = small_campaign();
  const std::string base = run_to_csv(s, {});

  TempPath ckpt("resume-done");
  // Run to completion while checkpointing every round.
  {
    std::ostringstream out;
    report::CsvWriter w(out);
    CampaignOptions o;
    o.threads = 1;
    o.sink = &w;
    o.on_round = [&](const std::vector<CellProgress>& p) {
      save_checkpoint(ckpt.path, s.identity, p);
    };
    (void)reliability::run_campaign(s.cells, s.spec, o);
  }
  // Resuming a finished checkpoint runs zero trials and emits everything.
  EXPECT_EQ(resume_to_csv(s, ckpt.path), base);
}

TEST(CheckpointResume, RejectsCursorsForForeignCells) {
  const auto s = small_campaign();
  std::vector<CellProgress> bogus(1);
  bogus[0].index = 999;  // not a cell of this campaign
  CampaignOptions o;
  o.threads = 1;
  o.resume_from = &bogus;
  EXPECT_THROW((void)reliability::run_campaign(s.cells, s.spec, o),
               std::invalid_argument);
}

TEST(CheckpointResume, RejectsInconsistentCursors) {
  const auto s = small_campaign();
  std::vector<CellProgress> bad(1);
  bad[0].index = 0;
  bad[0].done = 4;
  bad[0].trials = 4;
  bad[0].masked = 1;  // counters sum to 1, not 4
  CampaignOptions o;
  o.threads = 1;
  o.resume_from = &bad;
  EXPECT_THROW((void)reliability::run_campaign(s.cells, s.spec, o),
               std::invalid_argument);
}

TEST(CheckpointResume, ProcsEngineRefusesResumeHooks) {
  const auto s = small_campaign();
  reliability::CampaignProcOptions po;
  po.procs = 2;
  po.worker.on_round = [](const std::vector<CellProgress>&) {};
  std::ostringstream out;
  EXPECT_THROW(
      (void)reliability::run_campaign_procs(s.cells, s.spec, po, out),
      std::invalid_argument);
}

}  // namespace
}  // namespace laec::service
