#include "ecc/secded.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace laec::ecc {
namespace {

TEST(Secded, Geometries) {
  EXPECT_EQ(secded8().check_bits(), 5u);
  EXPECT_EQ(secded16().check_bits(), 6u);
  EXPECT_EQ(secded32().check_bits(), 7u);
  EXPECT_EQ(secded64().check_bits(), 8u);
  EXPECT_EQ(secded32().codeword_bits(), 39u);
  EXPECT_EQ(secded64().codeword_bits(), 72u);
}

TEST(Secded, ColumnsAreDistinctOddWeight) {
  for (const SecdedCode* c :
       {&secded8(), &secded16(), &secded32(), &secded64()}) {
    std::set<u64> seen;
    for (unsigned i = 0; i < c->data_bits(); ++i) {
      const u64 col = c->column(i);
      EXPECT_EQ(popcount64(col) % 2, 1) << "column " << i;
      EXPECT_GE(popcount64(col), 3) << "column " << i;
      EXPECT_TRUE(seen.insert(col).second) << "duplicate column " << i;
    }
  }
}

TEST(Secded, RowWeightsBalanced) {
  // The Hsiao construction should spread data bits evenly over the rows so
  // every syndrome XOR tree has similar depth.
  const SecdedCode& c = secded32();
  unsigned mn = ~0u, mx = 0;
  for (unsigned r = 0; r < c.check_bits(); ++r) {
    mn = std::min(mn, c.row_weight(r));
    mx = std::max(mx, c.row_weight(r));
  }
  // Perfect balance for (39,32) would be 96/7 ~ 13.7; the greedy
  // construction stays within a spread of 3.
  EXPECT_LE(mx - mn, 3u);
}

TEST(Secded, CleanDecodes) {
  Rng rng(1);
  const SecdedCode& c = secded32();
  for (int i = 0; i < 1000; ++i) {
    const u64 v = rng.next_u64() & 0xffffffff;
    const auto r = c.check(v, c.encode(v));
    EXPECT_EQ(r.status, CheckStatus::kOk);
    EXPECT_EQ(r.data, v);
  }
}

struct FlipCase {
  unsigned width;
  unsigned pos;  // codeword bit to flip
};

class SecdedSingleFlip
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(SecdedSingleFlip, EverySingleFlipCorrected) {
  const auto [width, pos] = GetParam();
  const SecdedCode c(width);
  if (pos >= c.codeword_bits()) GTEST_SKIP();
  Rng rng(width * 1000 + pos);
  for (int trial = 0; trial < 8; ++trial) {
    const u64 v = rng.next_u64() & low_mask(width);
    u64 data = v;
    u64 check = c.encode(v);
    if (pos < width) {
      data = flip_bit(data, pos);
    } else {
      check = flip_bit(check, pos - width);
    }
    const auto r = c.check(data, check);
    EXPECT_EQ(r.status, CheckStatus::kCorrected);
    EXPECT_EQ(r.data, v) << "width=" << width << " pos=" << pos;
    EXPECT_EQ(r.check, c.encode(v));
    EXPECT_EQ(r.corrected_pos, static_cast<int>(pos));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPositions, SecdedSingleFlip,
    ::testing::Combine(::testing::Values(8u, 16u, 32u, 64u),
                       ::testing::Range(0u, 72u)));

TEST(Secded, EveryDoubleFlipDetected32) {
  // Exhaustive over all C(39,2) = 741 bit pairs of the (39,32) code.
  const SecdedCode& c = secded32();
  const u64 v = 0x89abcdefull;
  const u64 chk = c.encode(v);
  const unsigned n = c.codeword_bits();
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = i + 1; j < n; ++j) {
      u64 data = v;
      u64 check = chk;
      for (unsigned p : {i, j}) {
        if (p < 32) {
          data = flip_bit(data, p);
        } else {
          check = flip_bit(check, p - 32);
        }
      }
      EXPECT_EQ(c.check(data, check).status,
                CheckStatus::kDetectedUncorrectable)
          << "pair " << i << "," << j;
    }
  }
}

TEST(Secded, EveryDoubleFlipDetected64) {
  const SecdedCode& c = secded64();
  const u64 v = 0x0123456789abcdefull;
  const u64 chk = c.encode(v);
  const unsigned n = c.codeword_bits();
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned j = i + 1; j < n; ++j) {
      u64 data = v;
      u64 check = chk;
      for (unsigned p : {i, j}) {
        if (p < 64) {
          data = flip_bit(data, p);
        } else {
          check = flip_bit(check, p - 64);
        }
      }
      EXPECT_EQ(c.check(data, check).status,
                CheckStatus::kDetectedUncorrectable);
    }
  }
}

// Exhaustive single-error property: for EVERY codeword bit position of the
// (39,32) code and a structured battery of data words (all-zeros, all-ones,
// every walking-one, every walking-zero, alternating patterns, plus random
// words), decode(encode(w) with bit p flipped) must round-trip to w with
// kCorrected status. This is the full single-bit fault space of the DL1
// word codec — 39 positions x 70 words — not a sampled subset.
TEST(Secded, ExhaustiveSingleFlipRoundTrip32) {
  const SecdedCode& c = secded32();
  std::vector<u64> words = {0x00000000ull, 0xffffffffull, 0xaaaaaaaaull,
                            0x55555555ull};
  for (unsigned b = 0; b < 32; ++b) {
    words.push_back(u64{1} << b);          // walking one
    words.push_back(~(u64{1} << b) & 0xffffffffull);  // walking zero
  }
  Rng rng(0x5ec);
  for (int i = 0; i < 2; ++i) words.push_back(rng.next_u64() & 0xffffffffull);

  for (const u64 w : words) {
    const u64 chk = c.encode(w);
    // Clean round-trip first.
    const auto clean = c.check(w, chk);
    ASSERT_EQ(clean.status, CheckStatus::kOk);
    ASSERT_EQ(clean.data, w);
    for (unsigned pos = 0; pos < c.codeword_bits(); ++pos) {
      u64 data = w;
      u64 check = chk;
      if (pos < 32) {
        data = flip_bit(data, pos);
      } else {
        check = flip_bit(check, pos - 32);
      }
      const auto r = c.check(data, check);
      ASSERT_EQ(r.status, CheckStatus::kCorrected)
          << "word 0x" << std::hex << w << " pos " << std::dec << pos;
      ASSERT_EQ(r.data, w);
      ASSERT_EQ(r.check, chk);
      ASSERT_EQ(r.corrected_pos, static_cast<int>(pos));
    }
  }
}

// Exhaustive double-error property over the same word battery: every one of
// the C(39,2) = 741 flip pairs must be flagged detected-uncorrectable (and
// never silently "corrected" into valid-looking data) for every word.
TEST(Secded, ExhaustiveDoubleFlipDetection32AcrossWords) {
  const SecdedCode& c = secded32();
  const std::vector<u64> words = {0x00000000ull, 0xffffffffull,
                                  0xaaaaaaaaull, 0x55555555ull,
                                  0xdeadbeefull, 0x01234567ull};
  const unsigned n = c.codeword_bits();
  for (const u64 w : words) {
    const u64 chk = c.encode(w);
    for (unsigned i = 0; i < n; ++i) {
      for (unsigned j = i + 1; j < n; ++j) {
        u64 data = w;
        u64 check = chk;
        for (unsigned p : {i, j}) {
          if (p < 32) {
            data = flip_bit(data, p);
          } else {
            check = flip_bit(check, p - 32);
          }
        }
        ASSERT_EQ(c.check(data, check).status,
                  CheckStatus::kDetectedUncorrectable)
            << "word 0x" << std::hex << w << " pair " << std::dec << i << ","
            << j;
      }
    }
  }
}

// The check bits themselves round-trip: re-encoding corrected data always
// reproduces the corrected check word, for every single-flip position of
// every width the library ships.
TEST(Secded, CorrectedCheckBitsConsistentAllWidths) {
  for (const SecdedCode* c :
       {&secded8(), &secded16(), &secded32(), &secded64()}) {
    Rng rng(c->data_bits());
    const u64 mask = c->data_bits() == 64 ? ~u64{0}
                                          : (u64{1} << c->data_bits()) - 1;
    const u64 w = rng.next_u64() & mask;
    const u64 chk = c->encode(w);
    for (unsigned pos = 0; pos < c->codeword_bits(); ++pos) {
      u64 data = w;
      u64 check = chk;
      if (pos < c->data_bits()) {
        data = flip_bit(data, pos);
      } else {
        check = flip_bit(check, pos - c->data_bits());
      }
      const auto r = c->check(data, check);
      ASSERT_EQ(r.status, CheckStatus::kCorrected);
      ASSERT_EQ(c->encode(r.data), r.check)
          << "width " << c->data_bits() << " pos " << pos;
    }
  }
}

TEST(Secded, SyndromeZeroOnlyWhenClean) {
  const SecdedCode& c = secded32();
  const u64 v = 0x13572468;
  EXPECT_EQ(c.syndrome(v, c.encode(v)), 0u);
  EXPECT_NE(c.syndrome(flip_bit(v, 9), c.encode(v)), 0u);
}

}  // namespace
}  // namespace laec::ecc
