#include "isa/assembler.hpp"

#include <gtest/gtest.h>

namespace laec::isa {
namespace {

TEST(Assembler, EmitsAndResolvesForwardLabels) {
  Assembler a("t");
  a.addi(R{1}, R{0}, 1);
  a.beq(R{1}, R{0}, "skip");  // forward reference
  a.addi(R{2}, R{0}, 2);
  a.label("skip");
  a.halt();
  const Program p = a.finish();
  ASSERT_EQ(p.num_instructions(), 4u);
  const DecodedInst b = decode(p.text[1]);
  EXPECT_EQ(b.op, Op::kBeq);
  EXPECT_EQ(b.imm, 2);  // two instructions forward
}

TEST(Assembler, BackwardBranch) {
  Assembler a("t");
  a.label("top");
  a.addi(R{1}, R{1}, 1);
  a.bne(R{1}, R{2}, "top");
  a.halt();
  const Program p = a.finish();
  EXPECT_EQ(decode(p.text[1]).imm, -1);
}

TEST(Assembler, UndefinedLabelThrows) {
  Assembler a("t");
  a.j("nowhere");
  EXPECT_THROW(a.finish(), std::runtime_error);
}

TEST(Assembler, DuplicateLabelThrows) {
  Assembler a("t");
  a.label("x");
  EXPECT_THROW(a.label("x"), std::runtime_error);
}

TEST(Assembler, ImmediateRangeChecked) {
  Assembler a("t");
  EXPECT_THROW(a.addi(R{1}, R{0}, 100000), std::runtime_error);
}

TEST(Assembler, LiSmallUsesSingleInstruction) {
  Assembler a("t");
  a.li(R{1}, 42);
  a.halt();
  const Program p = a.finish();
  EXPECT_EQ(p.num_instructions(), 2u);
  EXPECT_EQ(decode(p.text[0]).imm, 42);
}

TEST(Assembler, LiLargeExpandsToLuiOri) {
  Assembler a("t");
  a.li(R{1}, 0x12345678u);
  a.halt();
  const Program p = a.finish();
  ASSERT_EQ(p.num_instructions(), 3u);
  EXPECT_EQ(decode(p.text[0]).op, Op::kLui);
  EXPECT_EQ(decode(p.text[1]).op, Op::kOr);
}

TEST(Assembler, DataSegmentLayout) {
  Assembler a("t");
  const Addr w0 = a.data_word(0xdeadbeef);
  const Addr w1 = a.data_word(0x12345678);
  EXPECT_EQ(w1, w0 + 4);
  a.data_label("tbl");
  const Addr blk = a.data_words({1, 2, 3});
  a.halt();
  const Program p = a.finish();
  EXPECT_EQ(p.symbol("tbl"), blk);
  // Little-endian bytes of the first word.
  EXPECT_EQ(p.data[0], 0xef);
  EXPECT_EQ(p.data[3], 0xde);
}

TEST(Assembler, DataAlign) {
  Assembler a("t");
  a.data_bytes({1, 2, 3});
  const Addr aligned = a.data_align(16);
  EXPECT_EQ(aligned % 16, 0u);
}

TEST(Assembler, FinishTwiceThrows) {
  Assembler a("t");
  a.halt();
  a.finish();
  EXPECT_THROW(a.finish(), std::runtime_error);
}

TEST(Assembler, ProgramSymbolAndPcHelpers) {
  Assembler a("t");
  a.label("entry");
  a.nop();
  a.halt();
  const Program p = a.finish();
  EXPECT_EQ(p.symbol("entry"), p.text_base);
  EXPECT_TRUE(p.contains_pc(p.text_base));
  EXPECT_TRUE(p.contains_pc(p.text_base + 4));
  EXPECT_FALSE(p.contains_pc(p.text_base + 8));
  EXPECT_FALSE(p.contains_pc(p.text_base + 1));
  EXPECT_EQ(p.inst_at(p.text_base).op, Op::kNop);
  EXPECT_THROW((void)p.symbol("missing"), std::out_of_range);
}

}  // namespace
}  // namespace laec::isa
