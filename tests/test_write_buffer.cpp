#include "mem/write_buffer.hpp"

#include <gtest/gtest.h>

namespace laec::mem {
namespace {

PendingStore store_at(Addr a) {
  PendingStore s;
  s.addr = a;
  return s;
}

TEST(WriteBuffer, FifoOrder) {
  WriteBuffer wb(WriteBufferParams{.depth = 4});
  wb.push(store_at(1));
  wb.push(store_at(2));
  EXPECT_EQ(wb.front().addr, 1u);
  wb.pop();
  EXPECT_EQ(wb.front().addr, 2u);
  wb.pop();
  EXPECT_TRUE(wb.empty());
}

TEST(WriteBuffer, AcceptsUntilDepth) {
  WriteBuffer wb(WriteBufferParams{.depth = 2});
  EXPECT_TRUE(wb.can_push());
  wb.push(store_at(1));
  EXPECT_TRUE(wb.can_push());
  wb.push(store_at(2));
  EXPECT_FALSE(wb.can_push());  // full
}

TEST(WriteBuffer, BackpressureHysteresisUntilEmpty) {
  // Paper §III.B: once full, stores stall until the buffer is *completely*
  // empty, not merely one-slot-free.
  WriteBuffer wb(WriteBufferParams{.depth = 2});
  wb.push(store_at(1));
  wb.push(store_at(2));
  EXPECT_FALSE(wb.can_push());
  wb.pop();
  EXPECT_FALSE(wb.can_push());  // one free slot is not enough
  wb.pop();
  EXPECT_TRUE(wb.empty());
  EXPECT_TRUE(wb.can_push());  // reopened only when fully drained
}

TEST(WriteBuffer, StatsTrackOccupancyAndBlocks) {
  WriteBuffer wb(WriteBufferParams{.depth = 3});
  wb.push(store_at(1));
  wb.push(store_at(2));
  wb.note_blocked_push();
  EXPECT_EQ(wb.stats().value("pushes"), 2u);
  EXPECT_EQ(wb.stats().value("max_occupancy"), 2u);
  EXPECT_EQ(wb.stats().value("full_stall_events"), 1u);
}

TEST(WriteBuffer, ForcedFlagsCarried) {
  WriteBuffer wb;
  PendingStore s;
  s.addr = 0x40;
  s.forced = true;
  s.forced_hit = false;
  wb.push(s);
  EXPECT_TRUE(wb.front().forced);
  EXPECT_FALSE(wb.front().forced_hit);
}

}  // namespace
}  // namespace laec::mem
