// Chronogram scenarios beyond the paper's figures: misses, write-buffer
// interaction, structural hazards — pinning the pipeline's visual/timing
// behaviour in corner cases the figures don't show.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace laec::cpu {
namespace {

using isa::Assembler;
using isa::R;

struct Harness {
  std::unique_ptr<sim::System> system;
  const report::ChronogramRecorder* chrono = nullptr;
  std::string row(Seq s) const { return chrono->compact(s); }
  const StatSet& stats() const {
    return system->core(0).pipeline().stats();
  }
};

Harness run(EccPolicy ecc, const isa::Program& p,
            const std::vector<Addr>& warm_lines, int max_cycles = 400) {
  core::SimConfig cfg = test::test_config(ecc);
  cfg.record_chronogram = true;
  Harness h;
  h.system = std::make_unique<sim::System>(core::make_system_config(cfg));
  h.system->load_program(p);
  test::prefill_icache(*h.system, p);
  for (Addr a : warm_lines) test::prefill_dl1(*h.system, a);
  auto& pipe = h.system->core(0).pipeline();
  pipe.set_reg(1, p.data_base);
  pipe.set_reg(2, 0);
  for (int i = 0; i < max_cycles && !h.system->core(0).halted(); ++i) {
    h.system->tick();
  }
  EXPECT_TRUE(h.system->core(0).halted());
  h.chrono = &pipe.chronogram();
  return h;
}

TEST(ChronogramScenarios, ColdLoadShowsRepeatedM) {
  // A DL1 miss holds the Memory stage for the whole refill.
  Assembler a("miss");
  a.data_words({1, 2, 3, 4});
  a.lw(R{3}, R{1}, R{2});
  a.halt();
  const auto h = run(EccPolicy::kNoEcc, a.finish(), /*warm=*/{});
  const std::string r = h.row(0);
  // F D RA Exe M M M ... M Exc WB — more than 10 M cells for a memory trip.
  EXPECT_NE(r.find("M M M"), std::string::npos);
  EXPECT_EQ(r.substr(0, 12), "F D RA Exe M");
  EXPECT_EQ(r.substr(r.size() - 8), "M Exc WB");
}

TEST(ChronogramScenarios, BackToBackLoadHitsStallUnderExtraCycle) {
  // "such a solution virtually doubles the time utilization of the DL1"
  // (§II.B): the second load waits an extra Exe cycle even with no data
  // dependence at all.
  Assembler a("b2b");
  a.data_words({1, 2, 3, 4, 5, 6, 7, 8});
  a.lw(R{3}, R{1}, 0);
  a.lw(R{4}, R{1}, 4);
  a.halt();
  const auto p = a.finish();
  const auto h = run(EccPolicy::kExtraCycle, p, {p.data_base});
  EXPECT_EQ(h.row(0), "F D RA Exe M M Exc WB");
  EXPECT_EQ(h.row(1), "F D RA Exe Exe M M Exc WB");

  // Under Extra Stage the same pair is fully pipelined.
  const auto h2 = run(EccPolicy::kExtraStage, p, {p.data_base});
  EXPECT_EQ(h2.row(0), "F D RA Exe M ECC Exc WB");
  EXPECT_EQ(h2.row(1), "F D RA Exe M ECC Exc WB");
}

TEST(ChronogramScenarios, LoadAfterStoreWaitsForDrain) {
  // §III.B: "All loads stall the memory stage until the write buffer is
  // empty". A store that *hits* drains in the port-idle cycle right after
  // its M stage, so a following load pays nothing; a store that *misses*
  // keeps the buffer busy for a whole write-allocate refill, and the load
  // visibly stalls in M.
  Assembler a("st_ld");
  a.data_fill(8, 0);              // warmed line (the load's target)
  const Addr cold = a.data_fill(64, 0) + 128;  // beyond the warmed line
  a.sw(R{5}, R{1}, static_cast<i32>(cold - isa::kDefaultDataBase));
  a.lw(R{3}, R{1}, 4);
  a.halt();
  const auto p = a.finish();
  const auto h = run(EccPolicy::kNoEcc, p, {p.data_base});
  // The store itself flows freely (the write buffer absorbs it)...
  EXPECT_EQ(h.row(0), "F D RA Exe M Exc WB");
  // ...the load pays M-stalls while the missing store drains.
  EXPECT_NE(h.row(1).find("M M"), std::string::npos);
  EXPECT_GT(h.stats().value("stall_wb_drain"), 0u);
}

TEST(ChronogramScenarios, AnticipatedLoadBehindStoreFallsBack) {
  // LAEC: the write buffer is not empty when the load reaches EX, so the
  // anticipated access falls back dynamically — still correct, and never
  // slower than Extra Stage's handling of the same sequence.
  Assembler a("st_la");
  a.data_words({7, 7, 7, 7, 7, 7, 7, 7});
  a.sw(R{5}, R{1}, 0);
  a.lw(R{3}, R{1}, 4);
  a.add(R{6}, R{3}, R{5});
  a.halt();
  const auto p = a.finish();
  const auto laec = run(EccPolicy::kLaec, p, {p.data_base});
  EXPECT_EQ(laec.stats().value("laec_dynamic_fallback") +
                laec.stats().value("laec_anticipated"),
            1u);

  Assembler b("st_es");
  b.data_words({7, 7, 7, 7, 7, 7, 7, 7});
  b.sw(R{5}, R{1}, 0);
  b.lw(R{3}, R{1}, 4);
  b.add(R{6}, R{3}, R{5});
  b.halt();
  const auto pb = b.finish();
  const auto es = run(EccPolicy::kExtraStage, pb, {pb.data_base});
  EXPECT_LE(laec.stats().value("cycles"), es.stats().value("cycles"));
}

TEST(ChronogramScenarios, TakenBranchSquashesWrongPath) {
  Assembler a("br");
  a.data_words({1, 2, 3, 4});
  a.li(R{4}, 1);
  a.bne(R{4}, R{0}, "target");   // always taken
  a.addi(R{9}, R{9}, 1);         // wrong path — must vanish
  a.addi(R{9}, R{9}, 1);
  a.label("target");
  a.addi(R{10}, R{10}, 1);
  a.halt();
  const auto p = a.finish();
  const auto h = run(EccPolicy::kNoEcc, p, {});
  EXPECT_GT(h.stats().value("squashed"), 0u);
  // Wrong-path rows were erased from the chronogram.
  EXPECT_EQ(h.row(2), "");
  // The target instruction appears after the squash bubble.
  EXPECT_FALSE(h.row(4).empty());
  EXPECT_EQ(h.system->core(0).pipeline().reg(9), 0u);
  EXPECT_EQ(h.system->core(0).pipeline().reg(10), 1u);
}

TEST(ChronogramScenarios, LaecStreamOfAnticipatedLoadsIsFullyPipelined) {
  // Consecutive anticipated loads use the DL1 port on consecutive EX
  // cycles — no resource hazard between anticipated loads (§III.A).
  Assembler a("stream");
  a.data_words({1, 2, 3, 4, 5, 6, 7, 8});
  a.lw(R{3}, R{1}, 0);
  a.lw(R{4}, R{1}, 4);
  a.lw(R{5}, R{1}, 8);
  a.halt();
  const auto p = a.finish();
  const auto h = run(EccPolicy::kLaec, p, {p.data_base});
  EXPECT_EQ(h.stats().value("laec_anticipated"), 3u);
  EXPECT_EQ(h.row(0), "F D RA Exe M ECC Exc WB");
  EXPECT_EQ(h.row(1), "F D RA Exe M ECC Exc WB");
  EXPECT_EQ(h.row(2), "F D RA Exe M ECC Exc WB");
}

TEST(ChronogramScenarios, DivOccupiesExeVisibly) {
  Assembler a("div");
  a.data_words({1});
  a.li(R{4}, 100);
  a.li(R{5}, 7);
  a.div(R{6}, R{4}, R{5});
  a.halt();
  core::SimConfig cfg = test::test_config(EccPolicy::kNoEcc);
  cfg.record_chronogram = true;
  cfg.div_latency = 4;
  Harness h;
  h.system = std::make_unique<sim::System>(core::make_system_config(cfg));
  const auto p = a.finish();
  h.system->load_program(p);
  test::prefill_icache(*h.system, p);
  for (int i = 0; i < 100 && !h.system->core(0).halted(); ++i) {
    h.system->tick();
  }
  h.chrono = &h.system->core(0).pipeline().chronogram();
  EXPECT_EQ(h.row(2), "F D RA Exe Exe Exe Exe M Exc WB");
}

}  // namespace
}  // namespace laec::cpu
