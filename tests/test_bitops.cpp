#include "common/bitops.hpp"

#include <gtest/gtest.h>

namespace laec {
namespace {

TEST(Bitops, Popcount) {
  EXPECT_EQ(popcount64(0), 0);
  EXPECT_EQ(popcount64(1), 1);
  EXPECT_EQ(popcount64(0xff), 8);
  EXPECT_EQ(popcount64(~u64{0}), 64);
}

TEST(Bitops, Parity) {
  EXPECT_EQ(parity64(0), 0u);
  EXPECT_EQ(parity64(1), 1u);
  EXPECT_EQ(parity64(3), 0u);
  EXPECT_EQ(parity64(7), 1u);
  EXPECT_EQ(parity64(~u64{0}), 0u);
}

TEST(Bitops, GetSetFlip) {
  u64 v = 0;
  v = set_bit(v, 5, 1);
  EXPECT_EQ(get_bit(v, 5), 1u);
  EXPECT_EQ(get_bit(v, 4), 0u);
  v = flip_bit(v, 5);
  EXPECT_EQ(v, 0u);
  v = set_bit(v, 63, 1);
  EXPECT_EQ(get_bit(v, 63), 1u);
  EXPECT_EQ(set_bit(v, 63, 0), 0u);
}

TEST(Bitops, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(32), 0xffffffffull);
  EXPECT_EQ(low_mask(64), ~u64{0});
}

TEST(Bitops, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(log2_pow2(1), 0u);
  EXPECT_EQ(log2_pow2(4096), 12u);
}

TEST(Bitops, SignExtend) {
  EXPECT_EQ(sign_extend(0xfff, 12), -1);
  EXPECT_EQ(sign_extend(0x7ff, 12), 2047);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0x1, 1), -1);
  EXPECT_EQ(sign_extend(0xffffffffu, 32), -1);
}

class SignExtendSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SignExtendSweep, RoundTripsThroughMask) {
  const unsigned bits = GetParam();
  for (i32 v : {-(1 << (bits - 1)), -1, 0, 1, (1 << (bits - 1)) - 1}) {
    const u32 enc = static_cast<u32>(v) & static_cast<u32>(low_mask(bits));
    EXPECT_EQ(sign_extend(enc, bits), v) << "bits=" << bits << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SignExtendSweep,
                         ::testing::Values(2u, 8u, 13u, 15u, 20u, 31u));

}  // namespace
}  // namespace laec
