#include "mem/hierarchy.hpp"

#include <gtest/gtest.h>

#include "mem/l1.hpp"

namespace laec::mem {
namespace {

MemorySystemParams fast_params() {
  MemorySystemParams p;
  p.bus.request_cycles = 1;
  p.bus.response_cycles = 1;
  p.l2.hit_cycles = 2;
  p.l2.write_cycles = 1;
  p.l2.memory_cycles = 10;
  p.l2.refill_cycles = 1;
  p.num_requesters = 2;
  return p;
}

L1Params dl1_params(WritePolicy wp = WritePolicy::kWriteBack,
                    ecc::CodecKind codec = ecc::CodecKind::kSecded) {
  L1Params p;
  p.cache.name = "dl1";
  p.cache.size_bytes = 1024;
  p.cache.line_bytes = 32;
  p.cache.ways = 2;
  p.cache.write_policy = wp;
  p.cache.codec = ecc::make_codec(codec);  // enum shim onto the registry
  return p;
}

struct Rig {
  Rig() : ms(fast_params()), dl1(dl1_params(), ms.bus(), 0) {}
  void tick_all(Cycle& now) {
    ms.tick(now);
    ++now;
  }
  MemorySystem ms;
  DL1Controller dl1;
};

TEST(Hierarchy, MissFetchesThroughL2FromMemory) {
  Rig rig;
  rig.ms.memory().write_u32(0x1000, 0xfeedc0de);
  Cycle now = 0;
  // Miss path: poll the controller and tick the bus each cycle.
  u32 value = 0;
  bool done = false;
  for (int i = 0; i < 200 && !done; ++i) {
    const auto r = rig.dl1.load(0x1000, 4, now);
    if (r.complete) {
      value = r.value;
      EXPECT_FALSE(r.hit);
      done = true;
    }
    rig.ms.tick(now);
    ++now;
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(value, 0xfeedc0deu);
  EXPECT_TRUE(rig.dl1.would_hit(0x1000));
  // The L2 now also holds the line (inclusive-ish refill).
  EXPECT_TRUE(rig.ms.l2().contains(0x1000));
}

TEST(Hierarchy, SecondAccessHitsLocally) {
  Rig rig;
  rig.ms.memory().write_u32(0x2000, 123);
  Cycle now = 0;
  bool done = false;
  for (int i = 0; i < 200 && !done; ++i) {
    done = rig.dl1.load(0x2000, 4, now).complete;
    rig.ms.tick(now);
    ++now;
  }
  const auto r = rig.dl1.load(0x2000, 4, now);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, 123u);
}

TEST(Hierarchy, L2HitFasterThanL2Miss) {
  Rig rig;
  Cycle now = 0;
  // First load warms the L2 (and DL1); invalidate DL1 to re-measure.
  bool done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    done = rig.dl1.load(0x3000, 4, now).complete;
    rig.ms.tick(now);
    ++now;
  }
  rig.dl1.cache().invalidate(0x3000);

  int l2_hit_cycles = 0;
  done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    done = rig.dl1.load(0x3000, 4, now).complete;
    rig.ms.tick(now);
    ++now;
    ++l2_hit_cycles;
  }

  // Fresh address: full memory trip.
  int l2_miss_cycles = 0;
  done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    done = rig.dl1.load(0x9000, 4, now).complete;
    rig.ms.tick(now);
    ++now;
    ++l2_miss_cycles;
  }
  EXPECT_LT(l2_hit_cycles, l2_miss_cycles);
  EXPECT_GE(l2_miss_cycles - l2_hit_cycles, 8);  // ~memory_cycles
}

TEST(Hierarchy, WriteBackStoreAllocatesAndDirties) {
  Rig rig;
  Cycle now = 0;
  bool done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    done = rig.dl1.store(0x4000, 4, 0xabcd, now).complete;
    rig.ms.tick(now);
    ++now;
  }
  ASSERT_TRUE(done);
  EXPECT_TRUE(rig.dl1.cache().line_dirty(0x4000));
  // Memory still has the stale value (no write-through).
  EXPECT_EQ(rig.ms.memory().read_u32(0x4000), 0u);
}

TEST(Hierarchy, WriteThroughStoreReachesL2) {
  MemorySystem ms(fast_params());
  DL1Controller dl1(dl1_params(WritePolicy::kWriteThrough,
                               ecc::CodecKind::kParity),
                    ms.bus(), 0);
  Cycle now = 0;
  bool done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    done = dl1.store(0x5000, 4, 77, now).complete;
    ms.tick(now);
    ++now;
  }
  ASSERT_TRUE(done);
  EXPECT_FALSE(dl1.cache().contains(0x5000));  // no-allocate on store miss
  EXPECT_TRUE(ms.l2().contains(0x5000));
  ms.flush_l2();
  EXPECT_EQ(ms.memory().read_u32(0x5000), 77u);
}

TEST(Hierarchy, DirtyEvictionWritesBackThroughBus) {
  Rig rig;  // DL1: 1 KB, 2-way, 32 B lines -> 16 sets, set stride 512 B
  Cycle now = 0;
  auto do_store = [&](Addr a, u32 v) {
    bool done = false;
    for (int i = 0; i < 400 && !done; ++i) {
      done = rig.dl1.store(a, 4, v, now).complete;
      rig.ms.tick(now);
      ++now;
    }
    ASSERT_TRUE(done);
  };
  do_store(0x0000, 111);  // set 0, dirty
  do_store(0x0200, 222);  // set 0, dirty
  do_store(0x0400, 333);  // set 0 -> evicts 0x0000
  // Give the eviction writeback time to drain.
  for (int i = 0; i < 100; ++i) {
    rig.ms.tick(now);
    ++now;
  }
  EXPECT_FALSE(rig.dl1.cache().contains(0x0000));
  EXPECT_TRUE(rig.ms.l2().contains(0x0000));
  rig.ms.flush_l2();
  EXPECT_EQ(rig.ms.memory().read_u32(0x0000), 111u);
}

TEST(Hierarchy, ParityErrorRecoversByRefetch) {
  MemorySystem ms(fast_params());
  DL1Controller dl1(dl1_params(WritePolicy::kWriteThrough,
                               ecc::CodecKind::kParity),
                    ms.bus(), 0);
  ecc::FaultInjector inj;
  dl1.set_injector(&inj);
  ms.memory().write_u32(0x6000, 0x600d600d);
  Cycle now = 0;
  bool done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    done = dl1.load(0x6000, 4, now).complete;
    ms.tick(now);
    ++now;
  }
  // Corrupt the cached copy; the next load detects parity failure and
  // refetches the clean copy from L2.
  inj.script_flip(0x6000 / 4, 5);
  done = false;
  u32 v = 0;
  for (int i = 0; i < 300 && !done; ++i) {
    const auto r = dl1.load(0x6000, 4, now);
    done = r.complete;
    if (done) v = r.value;
    ms.tick(now);
    ++now;
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(v, 0x600d600du);
  EXPECT_EQ(dl1.stats().value("parity_refetches"), 1u);
}

TEST(Hierarchy, OracleModeForcesOutcomes) {
  MemorySystem ms(fast_params());
  L1Params p = dl1_params();
  p.oracle.enabled = true;
  p.oracle.miss_cycles = 5;
  DL1Controller dl1(p, ms.bus(), 0);
  Cycle now = 0;
  // Forced hit completes immediately.
  EXPECT_TRUE(dl1.load(0x1234, 4, now, true).complete);
  // Forced miss takes oracle.miss_cycles.
  int cycles = 0;
  bool done = false;
  while (!done) {
    const auto r = dl1.load(0x1234, 4, now, false);
    done = r.complete;
    ++now;
    ++cycles;
    ASSERT_LT(cycles, 50);
  }
  EXPECT_GE(cycles, 5);
}

}  // namespace
}  // namespace laec::mem
