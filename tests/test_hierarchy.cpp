#include "mem/hierarchy.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "mem/l1.hpp"

namespace laec::mem {
namespace {

MemorySystemParams fast_params() {
  MemorySystemParams p;
  p.bus.request_cycles = 1;
  p.bus.response_cycles = 1;
  p.l2.hit_cycles = 2;
  p.l2.write_cycles = 1;
  p.l2.memory_cycles = 10;
  p.l2.refill_cycles = 1;
  p.num_requesters = 2;
  return p;
}

L1Params dl1_params(WritePolicy wp = WritePolicy::kWriteBack,
                    ecc::CodecKind codec = ecc::CodecKind::kSecded) {
  L1Params p;
  p.cache.name = "dl1";
  p.cache.size_bytes = 1024;
  p.cache.line_bytes = 32;
  p.cache.ways = 2;
  p.cache.write_policy = wp;
  p.cache.codec = ecc::make_codec(codec);  // enum shim onto the registry
  return p;
}

struct Rig {
  Rig() : ms(fast_params()), dl1(dl1_params(), ms.bus(), 0) {}
  void tick_all(Cycle& now) {
    ms.tick(now);
    ++now;
  }
  MemorySystem ms;
  DL1Controller dl1;
};

TEST(Hierarchy, MissFetchesThroughL2FromMemory) {
  Rig rig;
  rig.ms.memory().write_u32(0x1000, 0xfeedc0de);
  Cycle now = 0;
  // Miss path: poll the controller and tick the bus each cycle.
  u32 value = 0;
  bool done = false;
  for (int i = 0; i < 200 && !done; ++i) {
    const auto r = rig.dl1.load(0x1000, 4, now);
    if (r.complete) {
      value = r.value;
      EXPECT_FALSE(r.hit);
      done = true;
    }
    rig.ms.tick(now);
    ++now;
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(value, 0xfeedc0deu);
  EXPECT_TRUE(rig.dl1.would_hit(0x1000));
  // The L2 now also holds the line (inclusive-ish refill).
  EXPECT_TRUE(rig.ms.l2().contains(0x1000));
}

TEST(Hierarchy, SecondAccessHitsLocally) {
  Rig rig;
  rig.ms.memory().write_u32(0x2000, 123);
  Cycle now = 0;
  bool done = false;
  for (int i = 0; i < 200 && !done; ++i) {
    done = rig.dl1.load(0x2000, 4, now).complete;
    rig.ms.tick(now);
    ++now;
  }
  const auto r = rig.dl1.load(0x2000, 4, now);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.value, 123u);
}

TEST(Hierarchy, L2HitFasterThanL2Miss) {
  Rig rig;
  Cycle now = 0;
  // First load warms the L2 (and DL1); invalidate DL1 to re-measure.
  bool done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    done = rig.dl1.load(0x3000, 4, now).complete;
    rig.ms.tick(now);
    ++now;
  }
  rig.dl1.cache().invalidate(0x3000);

  int l2_hit_cycles = 0;
  done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    done = rig.dl1.load(0x3000, 4, now).complete;
    rig.ms.tick(now);
    ++now;
    ++l2_hit_cycles;
  }

  // Fresh address: full memory trip.
  int l2_miss_cycles = 0;
  done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    done = rig.dl1.load(0x9000, 4, now).complete;
    rig.ms.tick(now);
    ++now;
    ++l2_miss_cycles;
  }
  EXPECT_LT(l2_hit_cycles, l2_miss_cycles);
  EXPECT_GE(l2_miss_cycles - l2_hit_cycles, 8);  // ~memory_cycles
}

TEST(Hierarchy, WriteBackStoreAllocatesAndDirties) {
  Rig rig;
  Cycle now = 0;
  bool done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    done = rig.dl1.store(0x4000, 4, 0xabcd, now).complete;
    rig.ms.tick(now);
    ++now;
  }
  ASSERT_TRUE(done);
  EXPECT_TRUE(rig.dl1.cache().line_dirty(0x4000));
  // Memory still has the stale value (no write-through).
  EXPECT_EQ(rig.ms.memory().read_u32(0x4000), 0u);
}

TEST(Hierarchy, WriteThroughStoreReachesL2) {
  MemorySystem ms(fast_params());
  DL1Controller dl1(dl1_params(WritePolicy::kWriteThrough,
                               ecc::CodecKind::kParity),
                    ms.bus(), 0);
  Cycle now = 0;
  bool done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    done = dl1.store(0x5000, 4, 77, now).complete;
    ms.tick(now);
    ++now;
  }
  ASSERT_TRUE(done);
  EXPECT_FALSE(dl1.cache().contains(0x5000));  // no-allocate on store miss
  EXPECT_TRUE(ms.l2().contains(0x5000));
  ms.flush_l2();
  EXPECT_EQ(ms.memory().read_u32(0x5000), 77u);
}

TEST(Hierarchy, DirtyEvictionWritesBackThroughBus) {
  Rig rig;  // DL1: 1 KB, 2-way, 32 B lines -> 16 sets, set stride 512 B
  Cycle now = 0;
  auto do_store = [&](Addr a, u32 v) {
    bool done = false;
    for (int i = 0; i < 400 && !done; ++i) {
      done = rig.dl1.store(a, 4, v, now).complete;
      rig.ms.tick(now);
      ++now;
    }
    ASSERT_TRUE(done);
  };
  do_store(0x0000, 111);  // set 0, dirty
  do_store(0x0200, 222);  // set 0, dirty
  do_store(0x0400, 333);  // set 0 -> evicts 0x0000
  // Give the eviction writeback time to drain.
  for (int i = 0; i < 100; ++i) {
    rig.ms.tick(now);
    ++now;
  }
  EXPECT_FALSE(rig.dl1.cache().contains(0x0000));
  EXPECT_TRUE(rig.ms.l2().contains(0x0000));
  rig.ms.flush_l2();
  EXPECT_EQ(rig.ms.memory().read_u32(0x0000), 111u);
}

TEST(Hierarchy, ParityErrorRecoversByRefetch) {
  MemorySystem ms(fast_params());
  DL1Controller dl1(dl1_params(WritePolicy::kWriteThrough,
                               ecc::CodecKind::kParity),
                    ms.bus(), 0);
  ecc::FaultInjector inj;
  dl1.set_injector(&inj);
  ms.memory().write_u32(0x6000, 0x600d600d);
  Cycle now = 0;
  bool done = false;
  for (int i = 0; i < 300 && !done; ++i) {
    done = dl1.load(0x6000, 4, now).complete;
    ms.tick(now);
    ++now;
  }
  // Corrupt the cached copy; the next load detects parity failure and
  // refetches the clean copy from L2.
  inj.script_flip(0x6000 / 4, 5);
  done = false;
  u32 v = 0;
  for (int i = 0; i < 300 && !done; ++i) {
    const auto r = dl1.load(0x6000, 4, now);
    done = r.complete;
    if (done) v = r.value;
    ms.tick(now);
    ++now;
  }
  ASSERT_TRUE(done);
  EXPECT_EQ(v, 0x600d600du);
  EXPECT_EQ(dl1.stats().value("parity_refetches"), 1u);
}

// ---------------------------------------------------------------------------
// L2 protection end to end: faults injected into the shared L2 array must be
// corrected (or recovered) on the read path every L1 refill flows through.
// ---------------------------------------------------------------------------

/// Rig with an injector attached to the L2 array and a selectable L2 codec.
struct L2FaultRig {
  explicit L2FaultRig(const char* l2_codec) : ms(params_for(l2_codec)),
                                              dl1(dl1_params(), ms.bus(), 0) {
    ms.l2().set_injector(&inj);
  }
  static MemorySystemParams params_for(const char* codec) {
    MemorySystemParams p = fast_params();
    p.l2.cache.codec = ecc::make_codec(codec);
    return p;
  }
  u32 load(Addr a) {
    bool done = false;
    u32 v = 0;
    for (int i = 0; i < 400 && !done; ++i) {
      const auto r = dl1.load(a, 4, now);
      if (r.complete) v = r.value;
      done = r.complete;
      ms.tick(now);
      ++now;
    }
    EXPECT_TRUE(done);
    return v;
  }
  void store(Addr a, u32 v) {
    bool done = false;
    for (int i = 0; i < 400 && !done; ++i) {
      done = dl1.store(a, 4, v, now).complete;
      ms.tick(now);
      ++now;
    }
    EXPECT_TRUE(done);
  }
  MemorySystem ms;
  DL1Controller dl1;
  ecc::FaultInjector inj;
  Cycle now = 0;
};

TEST(Hierarchy, L2SingleBitErrorCorrectedOnRefill) {
  L2FaultRig rig("secded-39-32");
  rig.ms.memory().write_u32(0x1000, 0xfeedc0de);
  (void)rig.load(0x1000);          // warm the L2
  rig.dl1.cache().invalidate(0x1000);
  rig.inj.script_flip(0x1000 / 4, 7);  // strike the L2 copy
  EXPECT_EQ(rig.load(0x1000), 0xfeedc0deu) << "refill must deliver corrected";
  EXPECT_EQ(rig.ms.l2().stats().value("ecc_corrected"), 1u);
  EXPECT_EQ(rig.ms.stats().value("l2_refetches"), 0u);
  EXPECT_EQ(rig.ms.stats().value("l2_data_loss_events"), 0u);
}

TEST(Hierarchy, L2AdjacentDoubleCorrectedBySecDaec) {
  L2FaultRig rig("sec-daec-39-32");
  rig.ms.memory().write_u32(0x2000, 0x600df00d);
  (void)rig.load(0x2000);
  rig.dl1.cache().invalidate(0x2000);
  rig.inj.script_flip(0x2000 / 4, 12);
  rig.inj.script_flip(0x2000 / 4, 13);  // adjacent pair in one access
  EXPECT_EQ(rig.load(0x2000), 0x600df00du);
  EXPECT_EQ(rig.ms.l2().stats().value("ecc_corrected_adjacent"), 1u);
  EXPECT_EQ(rig.ms.l2().stats().value("ecc_detected_uncorrectable"), 0u);
  EXPECT_EQ(rig.ms.stats().value("l2_data_loss_events"), 0u);
}

TEST(Hierarchy, L2AdjacentDoubleOnCleanLineRefetchesUnderSecded) {
  L2FaultRig rig("secded-39-32");
  rig.ms.memory().write_u32(0x3000, 0xbeefcafe);
  (void)rig.load(0x3000);
  rig.dl1.cache().invalidate(0x3000);
  rig.inj.script_flip(0x3000 / 4, 3);
  rig.inj.script_flip(0x3000 / 4, 4);
  // SECDED only detects the pair; the line is clean, so the refetch from
  // memory is lossless.
  EXPECT_EQ(rig.load(0x3000), 0xbeefcafeu);
  EXPECT_EQ(rig.ms.l2().stats().value("ecc_detected_uncorrectable"), 1u);
  EXPECT_EQ(rig.ms.stats().value("l2_refetches"), 1u);
  EXPECT_EQ(rig.ms.stats().value("l2_data_loss_events"), 0u);
}

TEST(Hierarchy, L2AdjacentDoubleOnDirtyLineIsDataLossUnderSecded) {
  // The writeback path: a dirty DL1 eviction lands in the L2 as the ONLY
  // copy of the stores. An adjacent-double upset there is detected but not
  // correctable by SECDED -> the refetch restores the stale memory image
  // and the event counts as data loss. (DL1: 1 KB 2-way, 32 B lines ->
  // set stride 512 B; three stores to set 0 force the eviction.)
  L2FaultRig rig("secded-39-32");
  rig.store(0x0000, 111);
  rig.store(0x0200, 222);
  rig.store(0x0400, 333);  // evicts 0x0000 -> dirty writeback into L2
  for (int i = 0; i < 100; ++i) {
    rig.ms.tick(rig.now);
    ++rig.now;
  }
  ASSERT_TRUE(rig.ms.l2().line_dirty(0x0000));
  rig.inj.script_flip(0x0000 / 4, 20);
  rig.inj.script_flip(0x0000 / 4, 21);
  const u32 v = rig.load(0x0000);
  EXPECT_EQ(v, 0u) << "stale memory image, not the lost writeback";
  EXPECT_EQ(rig.ms.stats().value("l2_data_loss_events"), 1u);
  EXPECT_EQ(rig.ms.stats().value("l2_refetches"), 1u);
}

TEST(Hierarchy, L2DirtyAdjacentDoubleSurvivesUnderSecDaec) {
  // Same storm, SEC-DAEC at L2: the pair is corrected in place, the
  // writeback survives, zero data loss — the fig9 headline in miniature.
  L2FaultRig rig("sec-daec-39-32");
  rig.store(0x0000, 111);
  rig.store(0x0200, 222);
  rig.store(0x0400, 333);
  for (int i = 0; i < 100; ++i) {
    rig.ms.tick(rig.now);
    ++rig.now;
  }
  ASSERT_TRUE(rig.ms.l2().line_dirty(0x0000));
  rig.inj.script_flip(0x0000 / 4, 20);
  rig.inj.script_flip(0x0000 / 4, 21);
  EXPECT_EQ(rig.load(0x0000), 111u);
  EXPECT_EQ(rig.ms.l2().stats().value("ecc_corrected_adjacent"), 1u);
  EXPECT_EQ(rig.ms.stats().value("l2_data_loss_events"), 0u);
  // And the corrected value is what the end-of-run flush writes back.
  rig.dl1.cache().invalidate(0x0000);
  rig.ms.flush_l2();
  EXPECT_EQ(rig.ms.memory().read_u32(0x0000), 111u);
}

// ---------------------------------------------------------------------------
// The instruction cache is explicitly read-only.
// ---------------------------------------------------------------------------

TEST(Hierarchy, L1IArrayRejectsWritesAndDirtyFills) {
  MemorySystem ms(fast_params());
  L1Params p;
  p.cache.name = "l1i";
  p.cache.size_bytes = 1024;
  p.cache.line_bytes = 32;
  p.cache.ways = 2;
  p.cache.codec = ecc::make_codec("parity-32");
  L1IController l1i(p, ms.bus(), 0);
  EXPECT_TRUE(l1i.cache().config().read_only);
  std::vector<u8> line(32, 0);
  l1i.cache().fill(0x100, line.data(), /*dirty=*/false);  // refills are fine
  EXPECT_THROW(l1i.cache().write(0x100, 4, 1, false), std::logic_error);
  EXPECT_THROW(l1i.cache().fill(0x200, line.data(), /*dirty=*/true),
               std::logic_error);
  EXPECT_FALSE(l1i.cache().line_dirty(0x100));
}

TEST(Hierarchy, OracleModeForcesOutcomes) {
  MemorySystem ms(fast_params());
  L1Params p = dl1_params();
  p.oracle.enabled = true;
  p.oracle.miss_cycles = 5;
  DL1Controller dl1(p, ms.bus(), 0);
  Cycle now = 0;
  // Forced hit completes immediately.
  EXPECT_TRUE(dl1.load(0x1234, 4, now, true).complete);
  // Forced miss takes oracle.miss_cycles.
  int cycles = 0;
  bool done = false;
  while (!done) {
    const auto r = dl1.load(0x1234, 4, now, false);
    done = r.complete;
    ++now;
    ++cycles;
    ASSERT_LT(cycles, 50);
  }
  EXPECT_GE(cycles, 5);
}

}  // namespace
}  // namespace laec::mem
