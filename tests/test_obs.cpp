#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "reliability/campaign.hpp"
#include "report/sink.hpp"
#include "service/protocol.hpp"

namespace laec::obs {
namespace {

// ------------------------------------------------------ strict JSON parser --

/// Strict recursive-descent JSON validator (objects, arrays, strings with
/// full escape decoding, numbers, true/false/null), mirroring the JSONL
/// suite's discipline: any malformed byte fails the whole parse. The trace
/// tests lean on the strictness — a trace document that chrome://tracing
/// would reject must fail here first.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return i_ == s_.size();
  }

 private:
  std::string_view s_;
  std::size_t i_ = 0;

  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool literal(std::string_view lit) {
    if (s_.substr(i_, lit.size()) != lit) return false;
    i_ += lit.size();
    return true;
  }

  bool hex4() {
    for (int k = 0; k < 4; ++k) {
      if (i_ >= s_.size()) return false;
      const char c = s_[i_++];
      const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
                      (c >= 'A' && c <= 'F');
      if (!ok) return false;
    }
    return true;
  }

  bool string() {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    ++i_;
    while (i_ < s_.size()) {
      const unsigned char c = static_cast<unsigned char>(s_[i_]);
      if (c == '"') {
        ++i_;
        return true;
      }
      if (c < 0x20) return false;  // raw control char = malformed
      if (c == '\\') {
        if (++i_ >= s_.size()) return false;
        const char e = s_[i_++];
        if (e == 'u') {
          if (!hex4()) return false;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else {
        ++i_;
      }
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    if (i_ >= s_.size() || s_[i_] < '0' || s_[i_] > '9') return false;
    if (s_[i_] == '0') {
      ++i_;
    } else {
      while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9') ++i_;
    }
    if (i_ < s_.size() && s_[i_] == '.') {
      ++i_;
      if (i_ >= s_.size() || s_[i_] < '0' || s_[i_] > '9') return false;
      while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9') ++i_;
    }
    if (i_ < s_.size() && (s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
      if (i_ < s_.size() && (s_[i_] == '+' || s_[i_] == '-')) ++i_;
      if (i_ >= s_.size() || s_[i_] < '0' || s_[i_] > '9') return false;
      while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9') ++i_;
    }
    return i_ > start;
  }

  bool object() {
    ++i_;  // consume '{'
    ws();
    if (i_ < s_.size() && s_[i_] == '}') {
      ++i_;
      return true;
    }
    for (;;) {
      ws();
      if (!string()) return false;
      ws();
      if (i_ >= s_.size() || s_[i_] != ':') return false;
      ++i_;
      ws();
      if (!value()) return false;
      ws();
      if (i_ >= s_.size()) return false;
      if (s_[i_] == ',') {
        ++i_;
        continue;
      }
      if (s_[i_] == '}') {
        ++i_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++i_;  // consume '['
    ws();
    if (i_ < s_.size() && s_[i_] == ']') {
      ++i_;
      return true;
    }
    for (;;) {
      ws();
      if (!value()) return false;
      ws();
      if (i_ >= s_.size()) return false;
      if (s_[i_] == ',') {
        ++i_;
        continue;
      }
      if (s_[i_] == ']') {
        ++i_;
        return true;
      }
      return false;
    }
  }

  bool value() {
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
};

bool is_valid_json(std::string_view s) { return JsonValidator(s).valid(); }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --------------------------------------------------------------- histogram --

TEST(HistogramBuckets, Log2BucketIndexAndBounds) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  EXPECT_EQ(histogram_bucket(7), 3u);
  EXPECT_EQ(histogram_bucket(8), 4u);
  EXPECT_EQ(histogram_bucket(std::numeric_limits<u64>::max()), 64u);

  EXPECT_EQ(histogram_bucket_max(0), 0u);
  EXPECT_EQ(histogram_bucket_max(1), 1u);
  EXPECT_EQ(histogram_bucket_max(2), 3u);
  EXPECT_EQ(histogram_bucket_max(3), 7u);
  EXPECT_EQ(histogram_bucket_max(64), std::numeric_limits<u64>::max());

  // Every bucket's max lands back in that bucket; the next value starts
  // the next bucket.
  for (std::size_t b = 0; b < kHistogramBuckets - 1; ++b) {
    EXPECT_EQ(histogram_bucket(histogram_bucket_max(b)), b);
    EXPECT_EQ(histogram_bucket(histogram_bucket_max(b) + 1), b + 1);
  }
}

TEST(HistogramPercentile, EmptyHistogramIsZero) {
  HistogramData h;
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(1.0), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramPercentile, SingleSampleIsExactAtEveryQuantile) {
  Histogram h;
  h.record(1234);
  const HistogramData d = h.data();
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(d.sum, 1234u);
  EXPECT_EQ(d.min, 1234u);
  EXPECT_EQ(d.max, 1234u);
  // One sample: every quantile clamps to [min, max] = {1234}.
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(d.percentile(q), 1234u) << "q=" << q;
  }
}

TEST(HistogramPercentile, ExactInSingleValueBucketsInterpolatedAbove) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(0);
  for (int i = 0; i < 10; ++i) h.record(1);
  const HistogramData d = h.data();
  // Buckets 0 and 1 span one value each, so percentiles there are exact.
  EXPECT_EQ(d.percentile(0.25), 0u);
  EXPECT_EQ(d.percentile(0.75), 1u);
  EXPECT_EQ(d.percentile(1.0), 1u);

  Histogram wide;
  wide.record(1000);
  wide.record(2000);
  const HistogramData w = wide.data();
  // Interpolation never leaves the observed range.
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_GE(w.percentile(q), 1000u);
    EXPECT_LE(w.percentile(q), 2000u);
  }
  EXPECT_EQ(w.percentile(1.0), 2000u);
}

TEST(HistogramMerge, MergeEqualsRecordingEverythingInOne) {
  Histogram a, b, all;
  const std::vector<u64> va = {0, 1, 5, 9000, 1u << 20};
  const std::vector<u64> vb = {3, 3, 77, 1u << 30};
  for (const u64 v : va) {
    a.record(v);
    all.record(v);
  }
  for (const u64 v : vb) {
    b.record(v);
    all.record(v);
  }
  HistogramData merged = a.data();
  merged.merge(b.data());
  const HistogramData expect = all.data();
  EXPECT_EQ(merged.count, expect.count);
  EXPECT_EQ(merged.sum, expect.sum);
  EXPECT_EQ(merged.min, expect.min);
  EXPECT_EQ(merged.max, expect.max);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    EXPECT_EQ(merged.buckets[i], expect.buckets[i]) << "bucket " << i;
  }
}

TEST(HistogramMerge, EmptySidesAreIdentity) {
  Histogram h;
  h.record(42);
  h.record(7);
  const HistogramData d = h.data();

  HistogramData into_empty;  // empty.merge(d) == d
  into_empty.merge(d);
  EXPECT_EQ(into_empty.count, 2u);
  EXPECT_EQ(into_empty.min, 7u);
  EXPECT_EQ(into_empty.max, 42u);

  HistogramData from_empty = d;  // d.merge(empty) == d
  from_empty.merge(HistogramData{});
  EXPECT_EQ(from_empty.count, 2u);
  EXPECT_EQ(from_empty.min, 7u);
  EXPECT_EQ(from_empty.max, 42u);
}

// ---------------------------------------------------------------- registry --

TEST(Registry, CounterGaugeBasicsAndStableReferences) {
  Registry reg;
  Counter& c = reg.counter("test.counter");
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  EXPECT_EQ(&reg.counter("test.counter"), &c);

  Gauge& g = reg.gauge("test.gauge");
  g.set(100);
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 103u);

  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0u);
  // Names stay registered after reset.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  (void)reg.counter("metric.x");
  EXPECT_THROW((void)reg.gauge("metric.x"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("metric.x"), std::logic_error);
}

TEST(Registry, SnapshotIsNameOrdered) {
  Registry reg;
  reg.counter("zzz").add(1);
  reg.gauge("aaa").set(2);
  reg.histogram("mmm").record(3);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "aaa");
  EXPECT_EQ(snap.metrics[1].name, "mmm");
  EXPECT_EQ(snap.metrics[2].name, "zzz");
  EXPECT_EQ(snap.value("aaa"), 2u);
  EXPECT_EQ(snap.value("zzz"), 1u);
  EXPECT_EQ(snap.value("absent"), 0u);
  ASSERT_NE(snap.find("mmm"), nullptr);
  EXPECT_EQ(snap.find("mmm")->hist.count, 1u);
  EXPECT_EQ(snap.find("absent"), nullptr);
}

TEST(Registry, SnapshotMergeFoldsAndInsertsByName) {
  Registry a, b;
  a.counter("shared.counter").add(3);
  b.counter("shared.counter").add(4);
  a.gauge("only.a").set(7);
  b.gauge("only.b").set(8);
  a.histogram("shared.hist").record(10);
  b.histogram("shared.hist").record(20);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.value("shared.counter"), 7u);
  EXPECT_EQ(merged.value("only.a"), 7u);
  EXPECT_EQ(merged.value("only.b"), 8u);
  ASSERT_NE(merged.find("shared.hist"), nullptr);
  EXPECT_EQ(merged.find("shared.hist")->hist.count, 2u);
  EXPECT_EQ(merged.find("shared.hist")->hist.min, 10u);
  EXPECT_EQ(merged.find("shared.hist")->hist.max, 20u);
  // Insertions keep name order.
  for (std::size_t i = 1; i < merged.metrics.size(); ++i) {
    EXPECT_LT(merged.metrics[i - 1].name, merged.metrics[i].name);
  }

  // Same name, different kind: the fold refuses instead of corrupting.
  Registry c;
  c.gauge("shared.counter").set(1);
  MetricsSnapshot bad = a.snapshot();
  EXPECT_THROW(bad.merge(c.snapshot()), std::logic_error);
}

// ------------------------------------------------------------------ tracer --

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer& t = Tracer::global();
  t.disable();
  {
    Span span("should-not-appear");
    EXPECT_FALSE(span.live());
    span.arg("k", u64{1});  // no-ops, must not crash
  }
  t.instant("also-not");
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.total_recorded(), 0u);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  Tracer& t = Tracer::global();
  t.enable(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    t.instant("ev" + std::to_string(i));
  }
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest first, events 0 and 1 overwritten.
  EXPECT_EQ(evs[0].name, "ev2");
  EXPECT_EQ(evs[3].name, "ev5");
  EXPECT_EQ(evs[0].phase, 'i');
  EXPECT_EQ(t.total_recorded(), 6u);
  EXPECT_EQ(t.dropped(), 2u);
  t.disable();
}

TEST(Tracer, SpanRecordsCompleteEventWithArgs) {
  Tracer& t = Tracer::global();
  t.enable();
  {
    Span span("unit-span");
    ASSERT_TRUE(span.live());
    span.arg("n", u64{42});
    span.arg("s", "hello");
    span.close();
    EXPECT_FALSE(span.live());
    span.close();  // idempotent: no double record
  }
  const auto evs = t.events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].name, "unit-span");
  EXPECT_EQ(evs[0].phase, 'X');
  ASSERT_EQ(evs[0].args.size(), 2u);
  EXPECT_EQ(evs[0].args[0].key, "n");
  EXPECT_TRUE(evs[0].args[0].is_num);
  EXPECT_EQ(evs[0].args[0].num, 42u);
  EXPECT_EQ(evs[0].args[1].key, "s");
  EXPECT_FALSE(evs[0].args[1].is_num);
  EXPECT_EQ(evs[0].args[1].str, "hello");
  t.disable();
}

TEST(Tracer, EventJsonIsStrictlyValidEvenWithHostileStrings) {
  TraceEvent ev;
  ev.name = "quote\" backslash\\ control\x01\n tab\t";
  ev.phase = 'X';
  ev.ts_us = 12;
  ev.dur_us = 34;
  ev.tid = 2;
  ev.args.push_back({"arg \"key\"", "va\\lue\x02", 0, false});
  ev.args.push_back({"n", "", 99, true});
  const std::string json = event_to_json(ev, 7);
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"pid\":7"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Tracer, ChromeTraceDocumentIsValidJson) {
  Tracer& t = Tracer::global();
  t.enable();
  {
    Span s1("alpha");
    s1.arg("x", u64{1});
  }
  t.instant("beta", {{"why", "because", 0, false}});
  std::ostringstream out;
  t.write_chrome_trace(out, /*pid=*/0);
  const std::string doc = out.str();
  EXPECT_TRUE(is_valid_json(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"alpha\""), std::string::npos);
  EXPECT_NE(doc.find("\"beta\""), std::string::npos);
  t.disable();
}

TEST(Tracer, ShardMergeStitchesValidDocumentAndSkipsMissingShards) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "laec_obs_merge_test").string();
  fs::create_directories(dir);
  const std::string shard0 = dir + "/t.shard0.events";
  const std::string shard_missing = dir + "/t.shard1.events";
  const std::string out_path = dir + "/t.json";
  std::remove(shard_missing.c_str());

  Tracer& t = Tracer::global();
  t.enable();
  t.instant("from-shard");
  ASSERT_TRUE(write_shard_events_file(shard0, /*pid=*/1));
  t.disable();

  const std::vector<std::string> parent = {
      event_to_json({"from-parent", 'i', 1, 0, 0, {}}, 0)};
  ASSERT_TRUE(merge_trace_files({shard0, shard_missing}, parent, out_path));
  const std::string doc = slurp(out_path);
  EXPECT_TRUE(is_valid_json(doc)) << doc;
  EXPECT_NE(doc.find("from-shard"), std::string::npos);
  EXPECT_NE(doc.find("from-parent"), std::string::npos);
  std::remove(shard0.c_str());
  std::remove(out_path.c_str());
}

// --------------------------------------------------------------------- log --

TEST(Log, LevelParsingAndNames) {
  EXPECT_EQ(log_level_from_string("debug"), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_string("info"), LogLevel::kInfo);
  EXPECT_EQ(log_level_from_string("warn"), LogLevel::kWarn);
  EXPECT_EQ(log_level_from_string("error"), LogLevel::kError);
  EXPECT_EQ(log_level_from_string("off"), LogLevel::kOff);
  EXPECT_FALSE(log_level_from_string("verbose").has_value());
  EXPECT_FALSE(log_level_from_string("").has_value());

  EXPECT_EQ(log_level_name(LogLevel::kDebug), "debug");
  EXPECT_EQ(log_level_name(LogLevel::kError), "error");
}

TEST(Log, ThresholdFiltering) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_threshold(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  set_log_threshold(before);
}

// ---------------------------------------------------------- status protocol --

TEST(StatusProtocol, EncodeDecodeRoundTrip) {
  service::DaemonStatus s;
  s.uptime_ms = 123456;
  s.workers = 3;
  s.queue_depth = 9;
  s.inflight_cells = 2;
  s.jobs_accepted = 5;
  s.jobs_rejected = 1;
  s.cells_done = 40;
  s.trials_done = 4000;
  s.rows_streamed = 40;
  s.per_worker = {{10, 1000}, {20, 2000}, {10, 1000}};
  s.metrics.push_back({"campaign.golden_runs",
                       static_cast<u8>(MetricKind::kCounter), 4, 0, 0, 0});
  s.metrics.push_back({"daemon.queue_wait_us",
                       static_cast<u8>(MetricKind::kHistogram), 17, 90210,
                       55, 780});

  const service::DaemonStatus d =
      service::decode_status(service::encode_status(s));
  EXPECT_EQ(d.uptime_ms, s.uptime_ms);
  EXPECT_EQ(d.workers, s.workers);
  EXPECT_EQ(d.queue_depth, s.queue_depth);
  EXPECT_EQ(d.inflight_cells, s.inflight_cells);
  EXPECT_EQ(d.jobs_accepted, s.jobs_accepted);
  EXPECT_EQ(d.jobs_rejected, s.jobs_rejected);
  EXPECT_EQ(d.cells_done, s.cells_done);
  EXPECT_EQ(d.trials_done, s.trials_done);
  EXPECT_EQ(d.rows_streamed, s.rows_streamed);
  ASSERT_EQ(d.per_worker.size(), 3u);
  EXPECT_EQ(d.per_worker[1].cells_done, 20u);
  EXPECT_EQ(d.per_worker[1].trials_done, 2000u);
  ASSERT_EQ(d.metrics.size(), 2u);
  EXPECT_EQ(d.metrics[0].name, "campaign.golden_runs");
  EXPECT_EQ(d.metrics[0].value, 4u);
  EXPECT_EQ(d.metrics[1].name, "daemon.queue_wait_us");
  EXPECT_EQ(d.metrics[1].sum, 90210u);
  EXPECT_EQ(d.metrics[1].p50, 55u);
  EXPECT_EQ(d.metrics[1].p99, 780u);
}

TEST(StatusProtocol, TruncatedPayloadThrows) {
  service::DaemonStatus s;
  s.per_worker = {{1, 2}};
  const std::string payload = service::encode_status(s);
  EXPECT_THROW((void)service::decode_status(
                   std::string_view(payload).substr(0, payload.size() - 3)),
               service::WireError);
}

// --------------------------------------------- rows are tracing-invariant --

/// The hard observability contract, end to end: an instrumented campaign
/// emits BYTE-identical rows with the flight recorder hot or cold, and the
/// hot run's trace is a valid Chrome document containing the expected span
/// types.
TEST(TracedCampaign, RowsAreByteIdenticalTracedOrNot) {
  const auto run_once = [] {
    reliability::CampaignGrid grid;
    grid.workloads({"a2time"})
        .schemes({"laec"})
        .rates({*reliability::tech_preset("28nm")});
    reliability::CampaignSpec spec;
    spec.trials = 6;
    spec.base.dl1_size_bytes = 2 * 1024;
    std::ostringstream out;
    report::CsvWriter sink(out);
    reliability::CampaignOptions opts;
    opts.sink = &sink;
    (void)run_campaign(grid, spec, opts);
    return out.str();
  };

  Tracer::global().disable();
  const std::string cold = run_once();

  Tracer::global().enable();
  const std::string hot = run_once();
  std::ostringstream doc_out;
  Tracer::global().write_chrome_trace(doc_out, 0);
  Tracer::global().disable();

  EXPECT_EQ(hot, cold);
  EXPECT_FALSE(cold.empty());

  const std::string doc = doc_out.str();
  EXPECT_TRUE(is_valid_json(doc));
  for (const char* span : {"golden-run", "prune-plan", "campaign.round",
                           "trial", "snapshot-capture"}) {
    EXPECT_NE(doc.find(span), std::string::npos) << span;
  }
}

}  // namespace
}  // namespace laec::obs
