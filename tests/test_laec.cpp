// Property tests of the paper's central claims (DESIGN.md §6):
//  * all ECC deployments are timing-only: identical architectural results;
//  * LAEC is never slower than Extra Stage, and never faster than no-ECC;
//  * anticipation statistics respond to hazards as §III.A prescribes.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim_test_util.hpp"

namespace laec::cpu {
namespace {

using isa::Assembler;
using isa::R;
using test::run_keep_system;
using test::test_config;

/// Random straight-line program over a private data pool. Bases r1..r4 are
/// materialized with li so every config sees the same image.
isa::Program random_program(u64 seed, int n_ops) {
  Rng rng(seed);
  Assembler a("rand" + std::to_string(seed));
  const Addr pool = a.data_fill(512, 0);  // 2 KB
  a.li(R{1}, pool);
  a.li(R{2}, pool + 512);
  a.li(R{3}, pool + 1024);
  a.li(R{4}, pool + 1536);
  const auto base = [&] { return R{static_cast<unsigned>(1 + rng.below(4))}; };
  const auto gpr = [&] { return R{static_cast<unsigned>(5 + rng.below(20))}; };
  const auto off = [&] { return static_cast<i32>(4 * rng.below(120)); };
  for (int i = 0; i < n_ops; ++i) {
    switch (rng.below(10)) {
      case 0:
      case 1:
      case 2: {  // load
        a.lw(gpr(), base(), off());
        break;
      }
      case 3: {  // store
        a.sw(gpr(), base(), off());
        break;
      }
      case 4: {  // mul
        a.mul(gpr(), gpr(), gpr());
        break;
      }
      case 5: {  // shift
        a.srli(gpr(), gpr(), static_cast<i32>(rng.below(31)));
        break;
      }
      default: {  // add/sub/logic
        switch (rng.below(3)) {
          case 0: a.add(gpr(), gpr(), gpr()); break;
          case 1: a.xor_(gpr(), gpr(), gpr()); break;
          default: a.addi(gpr(), gpr(), static_cast<i32>(rng.range(-64, 64)));
        }
        break;
      }
    }
  }
  a.halt();
  return a.finish();
}

struct PolicyRun {
  u64 cycles;
  std::vector<u32> mem;
  std::vector<u32> regs;
};

PolicyRun run_policy(EccPolicy p, const isa::Program& prog) {
  // Warm the L1I: cold straight-line fetch misses add I/D bus-arbitration
  // noise that sits outside the paper's (loop-dominated) claims.
  auto r = run_keep_system(test_config(p), prog, /*warm_icache=*/true);
  EXPECT_TRUE(r.stats.completed) << to_string(p);
  PolicyRun out;
  out.cycles = r.stats.cycles;
  const Addr pool = prog.data_base;
  for (Addr a = pool; a < pool + 2048; a += 4) {
    out.mem.push_back(r.system->read_word_final(a));
  }
  for (unsigned i = 1; i < 28; ++i) {
    out.regs.push_back(r.system->core(0).pipeline().reg(i));
  }
  return out;
}

class RandomProgramProperty : public ::testing::TestWithParam<u64> {};

TEST_P(RandomProgramProperty, PoliciesAgreeAndOrder) {
  const auto prog = random_program(GetParam(), 300);
  const auto no_ecc = run_policy(EccPolicy::kNoEcc, prog);
  const auto extra_cycle = run_policy(EccPolicy::kExtraCycle, prog);
  const auto extra_stage = run_policy(EccPolicy::kExtraStage, prog);
  const auto laec = run_policy(EccPolicy::kLaec, prog);
  const auto wt = run_policy(EccPolicy::kWtParity, prog);

  // 1. Timing-only: identical architectural memory and registers.
  for (const auto* other : {&extra_cycle, &extra_stage, &laec, &wt}) {
    EXPECT_EQ(no_ecc.mem, other->mem);
    EXPECT_EQ(no_ecc.regs, other->regs);
  }

  // 2. The paper's ordering: anticipation can only help ("our look-ahead
  //    proposal will always perform equal or better than the Extra stage").
  EXPECT_LE(no_ecc.cycles, laec.cycles);
  EXPECT_LE(laec.cycles, extra_stage.cycles);
  EXPECT_LE(no_ecc.cycles, extra_cycle.cycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperty,
                         ::testing::Range<u64>(1, 21));

TEST(Laec, AnticipatesIndependentAddressLoads) {
  Assembler a("ind");
  const Addr buf = a.data_fill(64, 0);
  a.li(R{1}, buf);
  for (int i = 0; i < 40; ++i) {
    a.lw(R{5}, R{1}, static_cast<i32>(4 * (i % 16)));
    a.add(R{6}, R{6}, R{5});
  }
  a.halt();
  auto r = run_keep_system(test_config(EccPolicy::kLaec), a.finish());
  const auto& s = r.stats.pipeline_stats;
  // The address base never changes: after warm-up every load anticipates.
  EXPECT_GE(s.value("laec_anticipated"), 38u);
}

TEST(Laec, AddressProducerBlocksAnticipation) {
  auto build = [] {
    Assembler a("dep");
    const Addr buf = a.data_fill(64, 0);
    a.li(R{1}, buf);
    for (int i = 0; i < 40; ++i) {
      a.addi(R{2}, R{1}, static_cast<i32>(4 * (i % 16)));  // producer
      a.lw(R{5}, R{2}, 0);                                 // distance 1
      a.add(R{6}, R{6}, R{5});
    }
    a.halt();
    return a.finish();
  };
  // Under the exact rule a few loads still anticipate: consumer stalls skew
  // the pipeline so the producer's value is occasionally ready early. The
  // overwhelming majority are blocked.
  auto r = run_keep_system(test_config(EccPolicy::kLaec), build());
  const auto& s = r.stats.pipeline_stats;
  EXPECT_GE(s.value("laec_data_hazard"), 30u);
  EXPECT_LE(s.value("laec_anticipated"), 10u);

  // The paper-literal distance-1 rule is at least as conservative. (It
  // still anticipates when the producer has fully *retired* before the
  // load reaches RA — the value is architecturally in the register file,
  // which even the paper's wording permits.)
  auto cfg = test_config(EccPolicy::kLaec);
  cfg.hazard_rule = HazardRule::kPaperLiteral;
  auto rl = run_keep_system(cfg, build());
  EXPECT_LE(rl.stats.pipeline_stats.value("laec_anticipated"),
            s.value("laec_anticipated"));
  EXPECT_GE(rl.stats.pipeline_stats.value("laec_data_hazard"), 30u);
}

TEST(Laec, ProducerAtDistanceTwoDoesNotBlock) {
  Assembler a("dep2");
  const Addr buf = a.data_fill(64, 0);
  a.li(R{1}, buf);
  for (int i = 0; i < 40; ++i) {
    a.addi(R{2}, R{1}, static_cast<i32>(4 * (i % 16)));  // producer
    a.add(R{7}, R{7}, R{8});                             // filler
    a.lw(R{5}, R{2}, 0);                                 // distance 2
    a.add(R{6}, R{6}, R{5});
  }
  a.halt();
  auto r = run_keep_system(test_config(EccPolicy::kLaec), a.finish());
  const auto& s = r.stats.pipeline_stats;
  // The bypass delivers the base register in time (paper §III.E: "If any of
  // the registers has been generated but not yet stored in the register
  // file, it can be obtained from existing bypasses").
  EXPECT_GE(s.value("laec_anticipated"), 38u);
}

TEST(Laec, PaperLiteralRuleIsMoreConservative) {
  // Construct bubbles so the distance-1 producer's value IS ready early
  // (a taken branch separates them in time): kExact anticipates, the
  // paper-literal rule does not.
  Assembler a("lit");
  const Addr buf = a.data_fill(16, 0);
  a.li(R{9}, buf);
  for (int i = 0; i < 10; ++i) {
    a.mv(R{1}, R{9});          // distance-1 producer of the base...
    a.lw(R{5}, R{1}, 0);       // ...but preceded by pipeline bubbles
    a.nop();
    a.j("l" + std::to_string(i));  // taken jump inserts 3 squashes
    a.label("l" + std::to_string(i));
  }
  a.halt();

  auto exact_cfg = test_config(EccPolicy::kLaec);
  auto literal_cfg = test_config(EccPolicy::kLaec);
  literal_cfg.hazard_rule = HazardRule::kPaperLiteral;
  const auto prog1 = a.finish();
  const auto exact = run_keep_system(exact_cfg, prog1);
  const auto literal = run_keep_system(literal_cfg, prog1);
  EXPECT_GE(literal.stats.pipeline_stats.value("laec_data_hazard"),
            exact.stats.pipeline_stats.value("laec_data_hazard"));
  EXPECT_LE(literal.stats.pipeline_stats.value("laec_anticipated"),
            exact.stats.pipeline_stats.value("laec_anticipated"));
}

TEST(Laec, LaecMatchesNoEccWhenNoHazards) {
  // Pure streaming loads with independent consumers: LAEC should deliver
  // the no-ECC cycle count exactly (total overhead == 0).
  Assembler a("stream");
  const Addr buf = a.data_fill(64, 0);
  a.li(R{1}, buf);
  for (int i = 0; i < 60; ++i) {
    a.lw(R{5}, R{1}, static_cast<i32>(4 * (i % 16)));
    a.add(R{6}, R{6}, R{7});  // independent
  }
  a.halt();
  const auto prog = a.finish();
  const auto base = run_keep_system(test_config(EccPolicy::kNoEcc), prog);
  const auto laec = run_keep_system(test_config(EccPolicy::kLaec), prog);
  // Allow the one-cycle pipeline-drain difference of the 8th stage.
  EXPECT_LE(laec.stats.cycles, base.stats.cycles + 2);
}

TEST(Laec, BranchShadowKnobSuppressesAnticipation) {
  Assembler a("shadow");
  const Addr buf = a.data_fill(16, 0);
  a.li(R{1}, buf);
  a.li(R{6}, 123);  // loaded values are 0, so beq r5,r6 is never taken
  for (int i = 0; i < 20; ++i) {
    a.beq(R{5}, R{6}, "end");
    a.lw(R{5}, R{1}, 0);  // in RA exactly while the branch resolves in EX
    a.nop();
    a.nop();
  }
  a.label("end");
  a.halt();
  const auto prog = a.finish();

  auto relaxed = test_config(EccPolicy::kLaec);
  auto conservative = test_config(EccPolicy::kLaec);
  conservative.lookahead_under_branch_shadow = false;
  const auto rr = run_keep_system(relaxed, prog);
  const auto rc = run_keep_system(conservative, prog);
  EXPECT_GT(rc.stats.pipeline_stats.value("laec_branch_shadow"), 0u);
  EXPECT_LT(rc.stats.pipeline_stats.value("laec_anticipated"),
            rr.stats.pipeline_stats.value("laec_anticipated"));
}

TEST(Laec, DynamicFallbackOnPortCollision) {
  // Force stall skew: a load misses (long M occupancy), the next load's
  // static check passes but the port is claimed when it reaches EX.
  Assembler a("skew");
  const Addr buf = a.data_fill(1024, 0);  // larger than one line
  a.li(R{1}, buf);
  a.li(R{2}, buf + 512);
  for (int i = 0; i < 10; ++i) {
    // First load hits a cold line (miss); second is independent.
    a.lw(R{5}, R{1}, static_cast<i32>(32 * i + 2048));
    a.lw(R{6}, R{2}, static_cast<i32>(4 * i));
    a.add(R{7}, R{7}, R{6});
  }
  a.halt();
  auto r = run_keep_system(test_config(EccPolicy::kLaec), a.finish());
  ASSERT_TRUE(r.stats.completed);
  // Not asserting an exact count — just that the mechanism engages and the
  // run completes with consistent totals.
  const auto& s = r.stats.pipeline_stats;
  const u64 classified = s.value("laec_anticipated") +
                         s.value("laec_data_hazard") +
                         s.value("laec_resource_hazard") +
                         s.value("laec_dynamic_fallback") +
                         s.value("laec_branch_shadow");
  EXPECT_EQ(classified, r.stats.loads);
}

}  // namespace
}  // namespace laec::cpu
