// Golden-run pruning equivalence: `prune = true` (classify provably-masked
// trials analytically) and `prune = false` (simulate every trial) must
// produce byte-identical CSV rows and identical severity totals. This is
// the contract the two-pass accelerator stands on — same guarantee shape
// as the LUT-decode and fast-path equivalence suites.
//
// This binary covers every inject target and a mixed MBU table at two
// operating points (mostly-pruned and fully-live); the exhaustive
// codec x MBU-shape x target sweep lives in test_prune_equiv_exhaustive
// (label: slow).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ecc/registry.hpp"
#include "reliability/campaign.hpp"
#include "report/sink.hpp"

namespace laec::reliability {
namespace {

CampaignGrid grid_for(const std::vector<std::string>& schemes,
                      const ecc::MbuPatternTable& mix) {
  CampaignGrid grid;
  grid.workloads({"rspeed"}).schemes(schemes);
  grid.rates({{"hot", 1000.0, mix}});
  return grid;
}

CampaignSpec spec_for(core::InjectTarget target, double accel,
                      unsigned trials = 6) {
  CampaignSpec spec;
  spec.accel = accel;
  spec.trials = trials;
  spec.target = target;
  spec.base.dl1_size_bytes = 2 * 1024;
  return spec;
}

std::string campaign_csv(const CampaignGrid& grid, CampaignSpec spec,
                         bool prune, unsigned threads = 1) {
  spec.prune = prune;
  std::ostringstream out;
  report::CsvWriter sink(out);
  CampaignOptions opts;
  opts.threads = threads;
  opts.sink = &sink;
  (void)run_campaign(grid, spec, opts);
  return out.str();
}

/// Run both modes and assert rows byte-identical plus severity totals
/// equal field by field. Returns the pruned-trial total of the pruned run.
u64 expect_equivalent(const CampaignGrid& grid, const CampaignSpec& spec,
                      const std::string& label) {
  CampaignSpec pruned = spec, full = spec;
  pruned.prune = true;
  full.prune = false;
  const auto a = run_campaign(grid, pruned);
  const auto b = run_campaign(grid, full);
  EXPECT_EQ(a.cells.size(), b.cells.size()) << label;
  u64 pruned_total = 0;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const auto& x = a.cells[i];
    const auto& y = b.cells[i];
    const std::string at = label + " cell " + std::to_string(i);
    EXPECT_EQ(campaign_to_row(x), campaign_to_row(y)) << at;
    EXPECT_EQ(x.trials, y.trials) << at;
    EXPECT_EQ(x.events, y.events) << at;
    EXPECT_EQ(x.events_dropped, y.events_dropped) << at;
    EXPECT_EQ(x.masked, y.masked) << at;
    EXPECT_EQ(x.corrected, y.corrected) << at;
    EXPECT_EQ(x.due_recovered, y.due_recovered) << at;
    EXPECT_EQ(x.sdc, y.sdc) << at;
    EXPECT_EQ(x.data_loss, y.data_loss) << at;
    EXPECT_EQ(x.total_cycles, y.total_cycles) << at;
    EXPECT_EQ(x.pruned, y.pruned) << at;  // bookkept in both modes
    EXPECT_DOUBLE_EQ(x.device_hours, y.device_hours) << at;
    // A pruned trial is masked by construction: pruning can never classify
    // more trials masked than the cell actually has.
    EXPECT_LE(x.pruned, x.masked) << at;
    pruned_total += x.pruned;
  }
  return pruned_total;
}

// ------------------------------------------------------------- tier 1 ----

TEST(PruneEquiv, EveryInjectTargetAtAMostlyPrunedOperatingPoint) {
  // accel low enough that most storms land exclusively on dead windows:
  // the analytic classification path carries real weight here.
  const ecc::MbuPatternTable mix{0.4, 0.4, 0.1, 0.1};
  u64 pruned = 0;
  for (const auto target : {core::InjectTarget::kDl1, core::InjectTarget::kL1i,
                            core::InjectTarget::kL2}) {
    const auto grid = grid_for({"laec", "sec-daec-39-32"}, mix);
    pruned += expect_equivalent(
        grid, spec_for(target, 1e15),
        "target=" + std::string(core::to_string(target)));
  }
  // The operating point actually prunes — otherwise this test is vacuous.
  EXPECT_GT(pruned, 0u);
}

TEST(PruneEquiv, SaturatedOperatingPointStillIdentical) {
  // Acceleration high enough that every window — live ones included —
  // fires and the per-access flip budget overflows (events_dropped > 0):
  // nothing is prunable, and the pruned run must degrade to exactly the
  // simulate-everything run, surplus accounting included.
  const ecc::MbuPatternTable mix{0.2, 0.6, 0.15, 0.05};
  const auto grid = grid_for({"laec", "dec-bch-45-32"}, mix);
  const u64 pruned = expect_equivalent(
      grid, spec_for(core::InjectTarget::kDl1, 1e30), "saturated");
  EXPECT_EQ(pruned, 0u);
}

TEST(PruneEquiv, CsvBytesIdenticalAcrossThreadCounts) {
  const ecc::MbuPatternTable mix{0.5, 0.5, 0.0, 0.0};
  const auto grid = grid_for({"laec", "secded-39-32"}, mix);
  const auto spec = spec_for(core::InjectTarget::kDl1, 1e15, 10);
  const std::string ref = campaign_csv(grid, spec, /*prune=*/false, 1);
  EXPECT_FALSE(ref.empty());
  EXPECT_EQ(campaign_csv(grid, spec, true, 1), ref);
  EXPECT_EQ(campaign_csv(grid, spec, true, 8), ref);
}

TEST(PruneEquiv, ProcsMergeIdenticalAcrossPruneModes) {
  const ecc::MbuPatternTable mix{0.5, 0.5, 0.0, 0.0};
  const auto cells = grid_for({"laec", "secded-39-32"}, mix).cells();
  CampaignSpec spec = spec_for(core::InjectTarget::kDl1, 1e15, 8);
  std::string out[2];
  for (int i = 0; i < 2; ++i) {
    spec.prune = i == 0;
    CampaignProcOptions popts;
    popts.procs = 2;
    popts.worker.threads = 1;
    std::ostringstream os;
    const auto sum = run_campaign_procs(cells, spec, popts, os);
    EXPECT_EQ(sum.failed_workers, 0u);
    out[i] = os.str();
  }
  EXPECT_FALSE(out[0].empty());
  EXPECT_EQ(out[0], out[1]);
}

TEST(PruneEquiv, StoppingRuleFiresIdenticallyUnderPruning) {
  // Early stopping consumes per-batch severity counts; a pruned batch must
  // trip the rule at exactly the same trial count.
  const ecc::MbuPatternTable mix{1.0, 0.0, 0.0, 0.0};
  const auto grid = grid_for({"laec"}, mix);
  CampaignSpec spec = spec_for(core::InjectTarget::kDl1, 1e15, 64);
  spec.min_trials = 4;
  spec.batch = 4;
  spec.target_half_width = 0.45;
  spec.prune = true;
  const auto a = run_campaign(grid, spec);
  spec.prune = false;
  const auto b = run_campaign(grid, spec);
  ASSERT_EQ(a.cells.size(), 1u);
  ASSERT_EQ(b.cells.size(), 1u);
  EXPECT_EQ(a.cells[0].trials, b.cells[0].trials);
  EXPECT_EQ(a.cells[0].trials, 4u);
}

}  // namespace
}  // namespace laec::reliability
