// The calibrated trace generator must reproduce the Table II parameters it
// was asked for — measured by the pipeline itself, not by the generator.
#include "workloads/synthetic.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace laec::workloads {
namespace {

core::RunStats run_synthetic(const SyntheticParams& p, cpu::EccPolicy ecc) {
  core::SimConfig cfg;
  cfg.ecc = ecc;
  SyntheticTrace trace(p);
  return core::run_trace(cfg, trace);
}

TEST(Synthetic, HitsTableTargets) {
  SyntheticParams p;
  p.load_frac = 0.25;
  p.hit_frac = 0.89;
  p.dep_frac = 0.60;
  p.addr_dep_frac = 0.39;
  p.num_ops = 60'000;
  const auto r = run_synthetic(p, cpu::EccPolicy::kNoEcc);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.load_fraction(), 0.25, 0.015);
  EXPECT_NEAR(r.hit_fraction(), 0.89, 0.015);
  EXPECT_NEAR(r.dep_fraction(), 0.60, 0.03);
}

TEST(Synthetic, ExtremeRowsCalibrate) {
  // cacheb's unusual row: 77% hits, 13% dependent loads, 18% loads.
  SyntheticParams p;
  p.load_frac = 0.18;
  p.hit_frac = 0.77;
  p.dep_frac = 0.13;
  p.addr_dep_frac = 0.10;
  p.num_ops = 60'000;
  const auto r = run_synthetic(p, cpu::EccPolicy::kNoEcc);
  EXPECT_NEAR(r.load_fraction(), 0.18, 0.015);
  EXPECT_NEAR(r.hit_fraction(), 0.77, 0.02);
  EXPECT_NEAR(r.dep_fraction(), 0.13, 0.03);
}

TEST(Synthetic, AddrDepControlsAnticipation) {
  SyntheticParams blocked;
  blocked.addr_dep_frac = 0.95;
  blocked.num_ops = 30'000;
  SyntheticParams open = blocked;
  open.addr_dep_frac = 0.0;
  const auto rb = run_synthetic(blocked, cpu::EccPolicy::kLaec);
  const auto ro = run_synthetic(open, cpu::EccPolicy::kLaec);
  EXPECT_GT(ro.laec_anticipated, rb.laec_anticipated);
  EXPECT_GT(rb.laec_data_hazard, ro.laec_data_hazard);
  EXPECT_LT(ro.cycles, rb.cycles);  // anticipation saves time
}

TEST(Synthetic, DeterministicAcrossRuns) {
  SyntheticParams p;
  p.num_ops = 20'000;
  const auto a = run_synthetic(p, cpu::EccPolicy::kLaec);
  const auto b = run_synthetic(p, cpu::EccPolicy::kLaec);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.laec_anticipated, b.laec_anticipated);
}

TEST(Synthetic, FromKernelTranscribesTableII) {
  const auto& matrix = kernel_by_name("matrix");
  const auto p = SyntheticParams::from_kernel(matrix, 1000);
  EXPECT_DOUBLE_EQ(p.load_frac, 0.20);
  EXPECT_DOUBLE_EQ(p.hit_frac, 0.99);
  EXPECT_DOUBLE_EQ(p.dep_frac, 0.64);
  EXPECT_DOUBLE_EQ(p.addr_dep_frac, matrix.addr_dep_frac);
}

TEST(Synthetic, SchemeOrderingHoldsOnTraces) {
  SyntheticParams p;
  p.num_ops = 40'000;
  const auto base = run_synthetic(p, cpu::EccPolicy::kNoEcc);
  const auto laec = run_synthetic(p, cpu::EccPolicy::kLaec);
  const auto es = run_synthetic(p, cpu::EccPolicy::kExtraStage);
  const auto ec = run_synthetic(p, cpu::EccPolicy::kExtraCycle);
  EXPECT_LE(base.cycles, laec.cycles);
  EXPECT_LE(laec.cycles, es.cycles);
  EXPECT_LE(es.cycles, ec.cycles + 2);
}

TEST(Synthetic, TraceEndsCleanly) {
  SyntheticParams p;
  p.num_ops = 777;  // not a multiple of the block size
  SyntheticTrace t(p);
  u64 n = 0;
  while (t.next().has_value()) ++n;
  EXPECT_EQ(n, 777u);
  EXPECT_FALSE(t.next().has_value());  // stays exhausted
}

}  // namespace
}  // namespace laec::workloads
