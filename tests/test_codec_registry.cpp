// Codec interface + registry + string-keyed deployment tests:
//  * every registered name constructs and its codec round-trips data;
//  * unknown names fail with a clear error naming the known schemes;
//  * user registration is a one-liner and immediately constructible;
//  * enum round-trips (CodecKind / CheckStatus / EccPolicy / HazardRule)
//    are exhaustive in both directions — no "?" placeholders;
//  * EccDeployment::parse covers policy keys, codec keys and
//    placement:codec combinations.
#include "ecc/registry.hpp"

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "core/deployment.hpp"
#include "core/simulator.hpp"
#include "cpu/pipeline_config.hpp"

namespace laec {
namespace {

TEST(CodecRegistry, EveryRegisteredNameConstructsAndRoundTrips) {
  for (const auto& name : ecc::registered_codecs()) {
    SCOPED_TRACE(name);
    const auto codec = ecc::make_codec(name);
    ASSERT_NE(codec, nullptr);
    EXPECT_FALSE(codec->name().empty());
    EXPECT_GT(codec->data_bits(), 0u);
    EXPECT_EQ(codec->codeword_bits(),
              codec->data_bits() + codec->check_bits());
    // Clean encode/decode round-trip on random words.
    Rng rng(0xc0dec);
    for (int i = 0; i < 64; ++i) {
      const u64 v = rng.next_u64() & low_mask(codec->data_bits());
      const auto d = codec->decode(v, codec->encode(v));
      ASSERT_EQ(d.status, ecc::CheckStatus::kOk);
      ASSERT_EQ(d.data, v);
    }
  }
}

TEST(CodecRegistry, InstancesAreSharedAndStable) {
  const auto a = ecc::make_codec("secded-39-32");
  const auto b = ecc::make_codec("secded-39-32");
  EXPECT_EQ(a.get(), b.get()) << "stateless codecs should be cached";
}

TEST(CodecRegistry, UnknownNameFailsWithClearError) {
  try {
    (void)ecc::make_codec("no-such-code-99-88");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-code-99-88"), std::string::npos);
    EXPECT_NE(msg.find("secded-39-32"), std::string::npos)
        << "error should name the known schemes: " << msg;
  }
}

TEST(CodecRegistry, CapabilitiesMatchSchemes) {
  EXPECT_FALSE(ecc::make_codec("none")->corrects_single());
  EXPECT_FALSE(ecc::make_codec("parity-32")->corrects_single());
  EXPECT_TRUE(ecc::make_codec("secded-39-32")->corrects_single());
  EXPECT_TRUE(ecc::make_codec("secded-39-32")->detects_double());
  EXPECT_FALSE(ecc::make_codec("secded-39-32")->corrects_adjacent_double());
  EXPECT_TRUE(ecc::make_codec("sec-daec-39-32")->corrects_single());
  EXPECT_TRUE(ecc::make_codec("sec-daec-39-32")->corrects_adjacent_double());
  EXPECT_FALSE(ecc::make_codec("sec-daec-39-32")->detects_double())
      << "SEC-DAEC may miscorrect non-adjacent doubles";
}

TEST(CodecRegistry, EnumShimMapsToThirtyTwoBitDefaults) {
  EXPECT_EQ(ecc::make_codec(ecc::CodecKind::kNone)->check_bits(), 0u);
  EXPECT_EQ(ecc::make_codec(ecc::CodecKind::kParity)->check_bits(), 1u);
  EXPECT_EQ(ecc::make_codec(ecc::CodecKind::kSecded)->name(),
            "secded-39-32");
}

TEST(CodecRegistry, UserRegistrationIsOneLine) {
  // The one-file drop-in path: register, construct by name, appears in the
  // listing. (A second registration of the same name must throw.)
  static const bool registered = ecc::register_codec(
      "test-parity-32", [] { return std::make_shared<ecc::ParityCodec>(32); });
  EXPECT_TRUE(registered);
  EXPECT_TRUE(ecc::codec_registered("test-parity-32"));
  EXPECT_EQ(ecc::make_codec("test-parity-32")->check_bits(), 1u);
  EXPECT_THROW(
      ecc::register_codec("test-parity-32",
                          [] { return std::make_shared<ecc::ParityCodec>(32); }),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Exhaustive enum string round-trips (no "?" placeholders anywhere).
// ---------------------------------------------------------------------------

TEST(EnumRoundTrips, CodecKind) {
  for (const auto k : {ecc::CodecKind::kNone, ecc::CodecKind::kParity,
                       ecc::CodecKind::kSecded}) {
    const auto s = to_string(k);
    EXPECT_EQ(s.find('?'), std::string_view::npos);
    const auto back = ecc::codec_kind_from_string(s);
    ASSERT_TRUE(back.has_value()) << s;
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(ecc::codec_kind_from_string("bogus").has_value());
}

TEST(EnumRoundTrips, CheckStatus) {
  for (const auto st :
       {ecc::CheckStatus::kOk, ecc::CheckStatus::kCorrected,
        ecc::CheckStatus::kCorrectedAdjacent,
        ecc::CheckStatus::kDetectedUncorrectable}) {
    const auto s = to_string(st);
    EXPECT_EQ(s.find('?'), std::string_view::npos);
    const auto back = ecc::check_status_from_string(s);
    ASSERT_TRUE(back.has_value()) << s;
    EXPECT_EQ(*back, st);
  }
  EXPECT_FALSE(ecc::check_status_from_string("").has_value());
}

TEST(EnumRoundTrips, EccPolicyAndHazardRule) {
  for (const auto p :
       {cpu::EccPolicy::kNoEcc, cpu::EccPolicy::kExtraCycle,
        cpu::EccPolicy::kExtraStage, cpu::EccPolicy::kLaec,
        cpu::EccPolicy::kWtParity}) {
    const auto s = to_string(p);
    EXPECT_EQ(s.find('?'), std::string_view::npos);
    const auto back = cpu::ecc_policy_from_string(s);
    ASSERT_TRUE(back.has_value()) << s;
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(cpu::ecc_policy_from_string("secded").has_value());
  for (const auto r : {cpu::HazardRule::kExact, cpu::HazardRule::kPaperLiteral}) {
    const auto back = cpu::hazard_rule_from_string(to_string(r));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, r);
  }
}

// ---------------------------------------------------------------------------
// EccDeployment string-keyed scheme selection.
// ---------------------------------------------------------------------------

TEST(EccDeployment, PolicyKeysExpandToCanonicalDeployments) {
  const auto laec = core::EccDeployment::parse("laec");
  EXPECT_EQ(laec.codec, "secded-39-32");
  EXPECT_EQ(laec.timing, cpu::EccPolicy::kLaec);
  EXPECT_EQ(laec.write_policy, mem::WritePolicy::kWriteBack);

  const auto wt = core::EccDeployment::parse("wt-parity");
  EXPECT_EQ(wt.codec, "parity-32");
  EXPECT_EQ(wt.write_policy, mem::WritePolicy::kWriteThrough);
  EXPECT_EQ(wt.alloc_policy, mem::AllocPolicy::kNoWriteAllocate);

  const auto none = core::EccDeployment::parse("no-ecc");
  EXPECT_EQ(none.codec, "none");
  EXPECT_EQ(none.timing, cpu::EccPolicy::kNoEcc);
}

TEST(EccDeployment, CodecKeysPickTheirNaturalArrangement) {
  const auto daec = core::EccDeployment::parse("sec-daec-39-32");
  EXPECT_EQ(daec.codec, "sec-daec-39-32");
  EXPECT_EQ(daec.timing, cpu::EccPolicy::kLaec);
  EXPECT_EQ(daec.write_policy, mem::WritePolicy::kWriteBack);

  const auto par = core::EccDeployment::parse("parity-32");
  EXPECT_EQ(par.timing, cpu::EccPolicy::kWtParity);
  EXPECT_EQ(par.write_policy, mem::WritePolicy::kWriteThrough);

  const auto none = core::EccDeployment::parse("none");
  EXPECT_EQ(none.timing, cpu::EccPolicy::kNoEcc);
}

TEST(EccDeployment, PlacementColonCodecCombines) {
  const auto d = core::EccDeployment::parse("extra-stage:sec-daec-39-32");
  EXPECT_EQ(d.name, "extra-stage:sec-daec-39-32");
  EXPECT_EQ(d.codec, "sec-daec-39-32");
  EXPECT_EQ(d.timing, cpu::EccPolicy::kExtraStage);
  // Detect-only codecs cannot sit in a correcting placement.
  EXPECT_THROW((void)core::EccDeployment::parse("extra-stage:parity-32"),
               std::invalid_argument);
  EXPECT_THROW((void)core::EccDeployment::parse("bogus:secded-39-32"),
               std::invalid_argument);
}

TEST(EccDeployment, SixtyFourBitCodecsAreRejectedForTheDl1) {
  // The cache arrays protect 32-bit words; the 64-bit geometries exist in
  // the library (and the registry) but cannot be deployed in the DL1.
  EXPECT_THROW((void)core::EccDeployment::parse("secded-72-64"),
               std::invalid_argument);
  EXPECT_THROW((void)core::EccDeployment::parse("laec:sec-daec-72-64"),
               std::invalid_argument);
}

TEST(EccDeployment, UnknownKeyFailsWithKnownChoices) {
  try {
    (void)core::EccDeployment::parse("quantum-ecc");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("quantum-ecc"), std::string::npos);
    EXPECT_NE(msg.find("laec"), std::string::npos);
    EXPECT_NE(msg.find("sec-daec-39-32"), std::string::npos);
  }
}

TEST(EccDeployment, SimConfigSetSchemeKeepsEnumInSync) {
  core::SimConfig cfg;
  cfg.set_scheme("sec-daec-39-32");
  EXPECT_EQ(cfg.ecc, cpu::EccPolicy::kLaec);
  ASSERT_TRUE(cfg.deployment.has_value());
  EXPECT_EQ(cfg.deployment->codec, "sec-daec-39-32");
  const auto sc = core::make_system_config(cfg);
  ASSERT_NE(sc.core.dl1.cache.codec, nullptr);
  EXPECT_EQ(sc.core.dl1.cache.codec->name(), "sec-daec-39-32");
  EXPECT_TRUE(sc.core.dl1.cache.codec->corrects_adjacent_double());
}

}  // namespace
}  // namespace laec
