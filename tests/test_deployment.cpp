// HierarchyDeployment: compound-key parsing, canonicalization round-trips,
// backward compatibility of every pre-existing single-level key, and the
// SimConfig -> SystemConfig wiring of all three cache levels.
#include "core/deployment.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "ecc/registry.hpp"

namespace laec {
namespace {

using core::HierarchyDeployment;
using mem::RecoveryPolicy;

void expect_same_deployment(const HierarchyDeployment& a,
                            const HierarchyDeployment& b) {
  EXPECT_EQ(a.codec, b.codec);
  EXPECT_EQ(a.timing, b.timing);
  EXPECT_EQ(a.write_policy, b.write_policy);
  EXPECT_EQ(a.alloc_policy, b.alloc_policy);
  EXPECT_EQ(a.scrub_on_correct, b.scrub_on_correct);
  EXPECT_EQ(a.recovery, b.recovery);
  EXPECT_TRUE(a.l1i == b.l1i);
  EXPECT_TRUE(a.l2 == b.l2);
  EXPECT_EQ(a.name, b.name);
}

TEST(HierarchyDeploymentParse, RoundTripsEveryKeyShape) {
  std::vector<std::string> keys = HierarchyDeployment::policy_keys();
  for (const auto& codec : ecc::registered_codecs()) {
    if (ecc::make_codec(codec)->data_bits() == 32) keys.push_back(codec);
  }
  keys.insert(keys.end(),
              {"extra-stage:sec-daec-39-32", "laec+l2:sec-daec-39-32",
               "laec+l1i:secded-39-32+l2:sec-daec-39-32",
               "sec-daec-39-32+l1i:parity-i2-32",
               "wt-parity+l2:sec-daec-39-32:no-scrub",
               "dl1:secded-39-32:no-scrub+l2:secded-39-32:refetch",
               "laec:no-scrub", "laec+l1i:secded-39-32:refetch"});
  for (const auto& key : keys) {
    SCOPED_TRACE(key);
    const auto d = HierarchyDeployment::parse(key);
    EXPECT_EQ(d.name, d.canonical_key());
    const auto again = HierarchyDeployment::parse(d.canonical_key());
    expect_same_deployment(d, again);
  }
}

TEST(HierarchyDeploymentParse, SingleLevelKeysKeepTheirOldDl1Meaning) {
  // PR 2's single-level grammar must parse to the identical DL1
  // arrangement (and canonicalize to itself, so CSV "ecc" values hold).
  const auto laec = HierarchyDeployment::parse("laec");
  EXPECT_EQ(laec.name, "laec");
  EXPECT_EQ(laec.codec, "secded-39-32");
  EXPECT_EQ(laec.timing, cpu::EccPolicy::kLaec);
  EXPECT_EQ(laec.write_policy, mem::WritePolicy::kWriteBack);
  EXPECT_TRUE(laec.scrub_on_correct);
  EXPECT_EQ(laec.recovery, RecoveryPolicy::kCorrectInPlace);

  const auto daec = HierarchyDeployment::parse("sec-daec-39-32");
  EXPECT_EQ(daec.name, "sec-daec-39-32");
  EXPECT_EQ(daec.timing, cpu::EccPolicy::kLaec);

  // A bare codec key keeps its codec spelling even though it expands to
  // the same arrangement as a policy key — "secded-39-32" and "laec" are
  // distinct sweep-axis values (the CSV "ecc" column must tell them
  // apart), exactly as in the single-level grammar.
  const auto secded = HierarchyDeployment::parse("secded-39-32");
  EXPECT_EQ(secded.name, "secded-39-32");
  EXPECT_EQ(secded.timing, cpu::EccPolicy::kLaec);
  EXPECT_EQ(HierarchyDeployment::parse("secded-39-32+l2:none").name,
            "secded-39-32+l2:none");

  const auto placed = HierarchyDeployment::parse("extra-stage:sec-daec-39-32");
  EXPECT_EQ(placed.name, "extra-stage:sec-daec-39-32");
  EXPECT_EQ(placed.timing, cpu::EccPolicy::kExtraStage);
  EXPECT_EQ(placed.codec, "sec-daec-39-32");

  const auto wt = HierarchyDeployment::parse("wt-parity");
  EXPECT_EQ(wt.name, "wt-parity");
  EXPECT_EQ(wt.recovery, RecoveryPolicy::kInvalidateRefetch);
}

TEST(HierarchyDeploymentParse, UnnamedLevelsKeepCanonicalDefaults) {
  for (const auto& key : {"laec", "sec-daec-39-32", "no-ecc",
                          "extra-stage:sec-daec-39-32"}) {
    SCOPED_TRACE(key);
    const auto d = HierarchyDeployment::parse(key);
    EXPECT_TRUE(d.l1i == HierarchyDeployment::l1i_default());
    EXPECT_TRUE(d.l2 == HierarchyDeployment::l2_default());
  }
  EXPECT_EQ(HierarchyDeployment::l1i_default().codec, "parity-32");
  EXPECT_EQ(HierarchyDeployment::l1i_default().recovery,
            RecoveryPolicy::kInvalidateRefetch);
  EXPECT_EQ(HierarchyDeployment::l2_default().codec, "secded-39-32");
  EXPECT_EQ(HierarchyDeployment::l2_default().recovery,
            RecoveryPolicy::kCorrectInPlace);
}

TEST(HierarchyDeploymentParse, LevelOverridesLandOnTheirLevel) {
  const auto d = HierarchyDeployment::parse(
      "laec+l1i:secded-39-32+l2:sec-daec-39-32");
  EXPECT_EQ(d.codec, "secded-39-32");  // DL1 untouched by level segments
  EXPECT_EQ(d.l1i.codec, "secded-39-32");
  EXPECT_TRUE(d.l1i.scrub_on_correct);  // derived: correcting codec
  EXPECT_EQ(d.l1i.recovery, RecoveryPolicy::kCorrectInPlace);
  EXPECT_EQ(d.l2.codec, "sec-daec-39-32");
  EXPECT_EQ(d.name, "laec+l1i:secded-39-32+l2:sec-daec-39-32");

  // Restating a level's default is legal and canonicalizes away.
  const auto redundant = HierarchyDeployment::parse("laec+l1i:parity-32");
  EXPECT_EQ(redundant.name, "laec");

  // Flags override the codec-derived defaults.
  const auto flagged =
      HierarchyDeployment::parse("laec+l2:secded-39-32:no-scrub:refetch");
  EXPECT_FALSE(flagged.l2.scrub_on_correct);
  EXPECT_EQ(flagged.l2.recovery, RecoveryPolicy::kInvalidateRefetch);
  EXPECT_EQ(flagged.name, "laec+l2:secded-39-32:no-scrub:refetch");
}

TEST(HierarchyDeploymentParse, MalformedCompoundKeysThrow) {
  using core::HierarchyDeployment;
  // Duplicate levels / duplicate DL1 segments.
  EXPECT_THROW((void)HierarchyDeployment::parse("laec+l2:none+l2:none"),
               std::invalid_argument);
  EXPECT_THROW((void)HierarchyDeployment::parse("laec+sec-daec-39-32"),
               std::invalid_argument);
  // No DL1 segment at all.
  EXPECT_THROW((void)HierarchyDeployment::parse("l2:sec-daec-39-32"),
               std::invalid_argument);
  // Unknown level, unknown codec, 64-bit geometry, empty segment.
  EXPECT_THROW((void)HierarchyDeployment::parse("laec+l3:secded-39-32"),
               std::invalid_argument);
  EXPECT_THROW((void)HierarchyDeployment::parse("laec+l2:quantum-ecc"),
               std::invalid_argument);
  EXPECT_THROW((void)HierarchyDeployment::parse("laec+l2:sec-daec-72-64"),
               std::invalid_argument);
  EXPECT_THROW((void)HierarchyDeployment::parse("laec+"),
               std::invalid_argument);
  // Correct-in-place recovery needs a correcting codec.
  EXPECT_THROW((void)HierarchyDeployment::parse("laec+l1i:parity-32:correct"),
               std::invalid_argument);
  // Conflicting (or duplicate) flags of one kind are rejected, not
  // silently resolved.
  EXPECT_THROW((void)HierarchyDeployment::parse(
                   "laec+l2:secded-39-32:scrub:no-scrub"),
               std::invalid_argument);
  EXPECT_THROW((void)HierarchyDeployment::parse(
                   "laec+l2:secded-39-32:correct:refetch"),
               std::invalid_argument);
}

TEST(HierarchyDeploymentWiring, SystemConfigCarriesAllThreeLevels) {
  core::SimConfig cfg;
  cfg.set_scheme("laec+l1i:parity-i2-32+l2:sec-daec-39-32:no-scrub");
  const auto sc = core::make_system_config(cfg);
  ASSERT_NE(sc.core.dl1.cache.codec, nullptr);
  EXPECT_EQ(sc.core.dl1.cache.codec->name(), "secded-39-32");
  EXPECT_TRUE(sc.core.dl1.cache.scrub_on_correct);
  EXPECT_EQ(sc.core.l1i.cache.codec->name(), "parity-i2-32");
  EXPECT_EQ(sc.core.l1i.cache.recovery, RecoveryPolicy::kInvalidateRefetch);
  EXPECT_EQ(sc.memsys.l2.cache.codec->name(), "sec-daec-39-32");
  EXPECT_FALSE(sc.memsys.l2.cache.scrub_on_correct);
  EXPECT_EQ(sc.memsys.l2.cache.recovery, RecoveryPolicy::kCorrectInPlace);
}

TEST(HierarchyDeploymentWiring, DefaultHierarchyMatchesPreRefactorMachine) {
  // The enum axis (no explicit deployment) must build the exact machine
  // PR 2 built: SECDED DL1 per policy, parity L1I, SECDED L2.
  core::SimConfig cfg;
  cfg.ecc = cpu::EccPolicy::kLaec;
  const auto sc = core::make_system_config(cfg);
  EXPECT_EQ(sc.core.dl1.cache.codec->name(), "secded-39-32");
  EXPECT_EQ(sc.core.l1i.cache.codec->name(), "parity-32");
  EXPECT_EQ(sc.memsys.l2.cache.codec->name(), "secded-39-32");
  EXPECT_TRUE(sc.memsys.l2.cache.scrub_on_correct);
}

}  // namespace
}  // namespace laec
