#include "model/analytical.hpp"

#include <gtest/gtest.h>

namespace laec::model {
namespace {

TEST(Analytical, ReproducesPaperAverages) {
  // Feeding the paper's Table II averages should land near the paper's
  // Fig. 8 averages: Extra Stage ~ +10%, Extra Cycle ~ +17%, LAEC < +4%.
  WorkloadParams w;  // defaults are the paper averages
  const auto p = predict(w);
  EXPECT_NEAR(p.extra_stage, 0.10, 0.02);
  EXPECT_NEAR(p.extra_cycle, 0.17, 0.035);
  EXPECT_LT(p.laec, 0.05);
  EXPECT_GT(p.laec, 0.01);
}

TEST(Analytical, OrderingAlwaysHolds) {
  for (double f : {0.15, 0.25, 0.35}) {
    for (double h : {0.7, 0.9, 1.0}) {
      for (double d : {0.1, 0.5, 0.8}) {
        for (double adf : {0.0, 0.4, 1.0}) {
          WorkloadParams w;
          w.load_frac = f;
          w.hit_frac = h;
          w.dep_frac = d;
          w.addr_dep_frac = adf;
          const auto p = predict(w);
          EXPECT_LE(p.laec, p.extra_stage + 1e-12);
          EXPECT_LE(p.extra_stage, p.extra_cycle + 1e-12);
          EXPECT_GE(p.laec, 0.0);
        }
      }
    }
  }
}

TEST(Analytical, LaecScalesWithAddressDependence) {
  WorkloadParams w;
  w.addr_dep_frac = 0.0;
  EXPECT_DOUBLE_EQ(predict(w).laec, 0.0);
  w.addr_dep_frac = 1.0;
  EXPECT_DOUBLE_EQ(predict(w).laec, predict(w).extra_stage);
}

TEST(Analytical, CachebRowPredictsTinyExtraStageOverhead) {
  WorkloadParams w;
  w.load_frac = 0.18;
  w.hit_frac = 0.77;
  w.dep_frac = 0.13;
  w.addr_dep_frac = 0.10;
  const auto p = predict(w);
  EXPECT_LT(p.extra_stage, 0.03);  // paper: ~2% for cacheb
}

TEST(Analytical, HigherBaseCpiDilutesOverhead) {
  WorkloadParams slow;
  slow.base_cpi = 2.0;
  WorkloadParams fast;
  fast.base_cpi = 1.0;
  EXPECT_LT(predict(slow).extra_stage, predict(fast).extra_stage);
}

}  // namespace
}  // namespace laec::model
