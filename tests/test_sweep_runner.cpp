// SweepRunner determinism: the whole point of the runner is that threading
// and sharding are pure mechanism — the result rows, their order and the
// batched aggregates must be byte-identical at any thread count, and the
// union of shards must equal the unsharded run.
#include "runner/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "report/sink.hpp"

namespace laec::runner {
namespace {

using cpu::EccPolicy;
using cpu::HazardRule;

SweepGrid small_trace_grid() {
  SweepGrid g;
  g.workloads({"tblook", "canrdr", "matrix"})
      .eccs({EccPolicy::kNoEcc, EccPolicy::kLaec, EccPolicy::kExtraStage})
      .mode(RunMode::kTrace)
      .trace_ops(4'000);
  return g;
}

/// Run the grid at `threads` threads and return the streamed CSV text.
std::string csv_at(const SweepGrid& grid, unsigned threads,
                   unsigned shard_count = 1, unsigned shard_index = 0) {
  std::ostringstream out;
  report::CsvWriter sink(out);
  SweepOptions opts;
  opts.threads = threads;
  opts.shard_count = shard_count;
  opts.shard_index = shard_index;
  opts.sink = &sink;
  const auto summary = run_sweep(grid, opts);
  EXPECT_EQ(summary.self_check_failures, 0u);
  return out.str();
}

TEST(SweepGrid, ExpansionIsStableAndComplete) {
  const auto pts = small_trace_grid().points();
  ASSERT_EQ(pts.size(), 9u);  // 3 workloads x 3 eccs
  // Workload-major, fixed inner order; indices are positional.
  EXPECT_EQ(pts[0].workload, "tblook");
  EXPECT_EQ(pts[0].config.ecc, EccPolicy::kNoEcc);
  EXPECT_EQ(pts[1].config.ecc, EccPolicy::kLaec);
  EXPECT_EQ(pts[3].workload, "canrdr");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].index, i);
    EXPECT_EQ(pts[i].variant, "default");
  }
}

TEST(SweepGrid, ReplicatesAxisExpandsInnermostWithTrialIndices) {
  SweepGrid g;
  g.workloads({"tblook"}).eccs({EccPolicy::kNoEcc, EccPolicy::kLaec});
  g.replicates(3).mode(RunMode::kTrace);
  const auto pts = g.points();
  ASSERT_EQ(pts.size(), 6u);  // 2 schemes x 3 replicates, replicate inner
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].index, i);
    EXPECT_EQ(pts[i].replicate, i % 3);
  }
  EXPECT_EQ(pts[2].config.ecc, EccPolicy::kNoEcc);
  EXPECT_EQ(pts[3].config.ecc, EccPolicy::kLaec);
  // Replicates share the workload-identity seed; what varies per trial is
  // mixed in inside run_point (program mode: the fault stream; trace
  // mode: the synthetic trace itself).
  EXPECT_EQ(point_seed(1, pts[0]), point_seed(1, pts[1]));
  EXPECT_THROW((void)g.replicates(0), std::invalid_argument);
}

TEST(SweepRunner, TraceReplicatesAreIndependentSamples) {
  SweepGrid g;
  g.workloads({"tblook"})
      .eccs({EccPolicy::kLaec})
      .replicates(3)
      .mode(RunMode::kTrace)
      .trace_ops(4000);
  const auto summary = run_sweep(g.points(), {});
  ASSERT_EQ(summary.results.size(), 3u);
  // Replicate 0 keeps the historical trace; later replicates draw fresh
  // traces — byte-identical rows across them would make Monte Carlo
  // statistics on the replicate axis spurious.
  EXPECT_NE(summary.results[0].stats.cycles, summary.results[1].stats.cycles);
  EXPECT_NE(summary.results[1].stats.cycles, summary.results[2].stats.cycles);
}

TEST(SweepGrid, VariantsApplyTweaksOnTopOfBaseConfig) {
  core::SimConfig base;
  base.write_buffer_depth = 2;
  SweepGrid g;
  g.workloads({"tblook"})
      .eccs({EccPolicy::kLaec})
      .base_config(base)
      .variants({{"small", [](core::SimConfig& c) { c.dl1_size_bytes = 1024; }},
                 {"big", [](core::SimConfig& c) {
                    c.dl1_size_bytes = 128 * 1024;
                  }}});
  const auto pts = g.points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].variant, "small");
  EXPECT_EQ(pts[0].config.dl1_size_bytes, 1024u);
  EXPECT_EQ(pts[1].config.dl1_size_bytes, 128u * 1024u);
  // Base config survives the tweak; grid-swept axes are overwritten.
  EXPECT_EQ(pts[0].config.write_buffer_depth, 2u);
  EXPECT_EQ(pts[0].config.ecc, EccPolicy::kLaec);
}

TEST(SweepGrid, StringSchemeAxisCarriesDeploymentsIntoPoints) {
  SweepGrid g;
  g.workloads({"tblook"})
      .schemes({"no-ecc", "sec-daec-39-32", "extra-stage:sec-daec-39-32"})
      .mode(RunMode::kTrace);
  const auto pts = g.points();
  ASSERT_EQ(pts.size(), 3u);
  ASSERT_TRUE(pts[1].config.deployment.has_value());
  EXPECT_EQ(pts[1].config.deployment->codec, "sec-daec-39-32");
  EXPECT_EQ(pts[1].config.ecc, EccPolicy::kLaec);
  EXPECT_EQ(pts[2].config.deployment->timing, EccPolicy::kExtraStage);
  // The enum shim spells policies through the same path.
  SweepGrid shim;
  shim.workloads({"tblook"}).eccs({EccPolicy::kWtParity});
  const auto spts = shim.points();
  ASSERT_EQ(spts.size(), 1u);
  EXPECT_EQ(spts[0].config.effective_deployment().codec, "parity-32");
}

TEST(SweepGrid, CompoundHierarchyKeysSweepPerLevelCodecs) {
  SweepGrid g;
  g.workloads({"tblook"})
      .schemes({"laec", "laec+l2:sec-daec-39-32",
                "laec+l1i:parity-i2-32+l2:sec-daec-39-32"})
      .mode(RunMode::kTrace);
  const auto pts = g.points();
  ASSERT_EQ(pts.size(), 3u);
  // All three points share the DL1 deployment; the levels differ.
  for (const auto& p : pts) {
    EXPECT_EQ(p.config.effective_deployment().codec, "secded-39-32");
    EXPECT_EQ(p.config.ecc, cpu::EccPolicy::kLaec);
  }
  EXPECT_EQ(pts[0].config.deployment->l2.codec, "secded-39-32");
  EXPECT_EQ(pts[1].config.deployment->l2.codec, "sec-daec-39-32");
  EXPECT_EQ(pts[2].config.deployment->l1i.codec, "parity-i2-32");
  // Rows carry the per-level codec columns.
  const std::string csv = csv_at(g, 2);
  EXPECT_NE(csv.find("laec+l1i:parity-i2-32+l2:sec-daec-39-32"),
            std::string::npos)
      << csv;
  EXPECT_NE(csv.find("parity-i2-32"), std::string::npos);
}

TEST(SweepGrid, UnknownSchemeKeyThrowsOnExpansion) {
  SweepGrid g;
  g.workloads({"tblook"}).schemes({"laec", "not-a-scheme"});
  EXPECT_THROW((void)g.points(), std::invalid_argument);
}

TEST(SweepRunner, RowsCarrySchemeAndCodecNames) {
  SweepGrid g;
  g.workloads({"tblook"})
      .schemes({"secded-39-32", "sec-daec-39-32"})
      .mode(RunMode::kTrace)
      .trace_ops(1'000);
  const std::string csv = csv_at(g, 2);
  EXPECT_NE(csv.find(",codec_dl1,codec_l1i,codec_l2,"), std::string::npos)
      << csv;
  EXPECT_NE(csv.find("secded-39-32"), std::string::npos);
  EXPECT_NE(csv.find("sec-daec-39-32"), std::string::npos);
  // Column count of every row matches the header arity.
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);
  const auto commas = std::count(line.begin(), line.end(), ',');
  EXPECT_EQ(static_cast<std::size_t>(commas) + 1, row_headers().size());
  while (std::getline(in, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), commas);
  }
}

TEST(PointSeed, DependsOnWorkloadIdentityNotGridPosition) {
  const auto pts = small_trace_grid().points();
  // Same workload, different ecc -> same seed (fair scheme comparisons).
  EXPECT_EQ(point_seed(1, pts[0]), point_seed(1, pts[1]));
  // Different workload -> different seed.
  EXPECT_NE(point_seed(1, pts[0]), point_seed(1, pts[3]));
  // Different base seed -> different seed.
  EXPECT_NE(point_seed(1, pts[0]), point_seed(2, pts[0]));
}

TEST(SweepRunner, ByteIdenticalRowsAtOneTwoAndEightThreads) {
  const auto grid = small_trace_grid();
  const std::string t1 = csv_at(grid, 1);
  const std::string t2 = csv_at(grid, 2);
  const std::string t8 = csv_at(grid, 8);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  // Header + 9 data rows.
  EXPECT_EQ(std::count(t1.begin(), t1.end(), '\n'), 10);
}

TEST(SweepRunner, AggregatesMatchAtAnyThreadCount) {
  const auto grid = small_trace_grid();
  SweepOptions a, b;
  a.threads = 1;
  b.threads = 8;
  const auto ra = run_sweep(grid, a);
  const auto rb = run_sweep(grid, b);
  EXPECT_EQ(ra.points_run, 9u);
  EXPECT_EQ(ra.totals.items(), rb.totals.items());
  EXPECT_GT(ra.totals.value("cycles"), 0u);
  EXPECT_EQ(ra.totals.value("points"), 9u);
  EXPECT_EQ(ra.totals.value("completed"), 9u);
}

TEST(SweepRunner, ShardsPartitionTheGridExactly) {
  const auto grid = small_trace_grid();
  const auto pts = grid.points();
  const std::string full = csv_at(grid, 4);

  // Collect every shard's data rows (skipping the per-shard header).
  std::map<std::string, int> shard_rows;
  for (unsigned shard = 0; shard < 3; ++shard) {
    std::istringstream in(csv_at(grid, 4, 3, shard));
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) ++shard_rows[line];
  }
  std::map<std::string, int> full_rows;
  std::istringstream in(full);
  std::string line;
  std::getline(in, line);
  while (std::getline(in, line)) ++full_rows[line];

  EXPECT_EQ(shard_rows, full_rows);
  EXPECT_EQ(static_cast<std::size_t>(full_rows.size()), pts.size());
}

TEST(SweepRunner, ProgramModeRunsSelfChecks) {
  SweepGrid g;
  g.workloads({"tblook"}).eccs({EccPolicy::kLaec}).mode(RunMode::kProgram);
  const auto summary = run_sweep(g, {});
  ASSERT_EQ(summary.results.size(), 1u);
  EXPECT_TRUE(summary.results[0].self_check_ok);
  EXPECT_TRUE(summary.results[0].stats.completed);
  EXPECT_EQ(summary.totals.value("self_check_failures"), 0u);
}

TEST(SweepRunner, InvalidShardOptionsThrow) {
  SweepGrid g;
  g.workloads({"tblook"}).mode(RunMode::kTrace).trace_ops(100);
  SweepOptions bad;
  bad.shard_count = 0;
  EXPECT_THROW((void)run_sweep(g, bad), std::invalid_argument);
  bad.shard_count = 2;
  bad.shard_index = 2;
  EXPECT_THROW((void)run_sweep(g, bad), std::invalid_argument);
}

TEST(SweepRunner, TraceModeWithFaultInjectionThrowsBeforeRunning) {
  core::SimConfig faulty;
  faulty.faults.emplace();
  faulty.faults->single_flip_prob = 0.01;
  SweepGrid g;
  g.workloads({"tblook"}).base_config(faulty).mode(RunMode::kTrace);
  EXPECT_THROW((void)run_sweep(g, {}), std::invalid_argument);
}

TEST(SweepRunner, UnknownWorkloadThrowsBeforeRunning) {
  SweepGrid g;
  g.workloads({"no-such-kernel"}).mode(RunMode::kTrace);
  EXPECT_THROW((void)run_sweep(g, {}), std::out_of_range);
}

TEST(RowSinks, CsvEscapesAndJsonPairsUpHeaders) {
  std::ostringstream csv;
  report::CsvWriter c(csv);
  c.begin({"a", "b"});
  c.row({"x,y", "q\"z"});
  EXPECT_EQ(csv.str(), "a,b\n\"x,y\",\"q\"\"z\"\n");

  std::ostringstream js;
  report::JsonLinesWriter j(js);
  j.begin({"a", "b"});
  j.row({"1", "two\nlines"});
  EXPECT_EQ(js.str(), "{\"a\":\"1\",\"b\":\"two\\nlines\"}\n");

  EXPECT_NE(report::make_row_writer("csv", csv), nullptr);
  EXPECT_NE(report::make_row_writer("jsonl", js), nullptr);
  EXPECT_EQ(report::make_row_writer("xml", js), nullptr);
}

}  // namespace
}  // namespace laec::runner
