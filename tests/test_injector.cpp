#include "ecc/injector.hpp"

#include <gtest/gtest.h>

namespace laec::ecc {
namespace {

TEST(Injector, DisabledByDefault) {
  FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
  EXPECT_TRUE(inj.flips_for_access(0).empty());
}

TEST(Injector, ScriptedFlipFiresOnceOnMatchingWord) {
  FaultInjector inj;
  inj.script_flip(7, 3);
  EXPECT_TRUE(inj.enabled());
  EXPECT_TRUE(inj.flips_for_access(5).empty());
  const auto f = inj.flips_for_access(7);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], 3u);
  EXPECT_TRUE(inj.flips_for_access(7).empty());  // consumed
  EXPECT_EQ(inj.injected_scripted(), 1u);
}

TEST(Injector, ScriptedFlipsAccumulate) {
  FaultInjector inj;
  inj.script_flip(1, 0);
  inj.script_flip(1, 5);
  const auto f = inj.flips_for_access(1);
  EXPECT_EQ(f.size(), 2u);
}

TEST(Injector, ScriptedPileUpBeyondFlipSetCapacityStaysQueued) {
  // The allocation-free FlipSet reserves two slots for the random draw;
  // an oversized scripted pile-up on one word delivers across successive
  // accesses instead of overflowing (or dropping) flips.
  FaultInjector inj;
  for (unsigned b = 0; b < 10; ++b) inj.script_flip(3, b);
  unsigned delivered = 0;
  int accesses = 0;
  while (inj.enabled() && accesses < 10) {
    const auto f = inj.flips_for_access(3);
    ASSERT_LE(f.size(), FlipSet::kMax);
    delivered += f.size();
    ++accesses;
  }
  EXPECT_EQ(delivered, 10u);
  EXPECT_EQ(inj.injected_scripted(), 10u);
  EXPECT_GE(accesses, 2);  // could not have fit in one access
}

TEST(Injector, SingleFlipRateApproximatelyHonored) {
  InjectorConfig cfg;
  cfg.single_flip_prob = 0.1;
  cfg.word_bits = 39;
  FaultInjector inj(cfg);
  int flips = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const auto f = inj.flips_for_access(static_cast<u64>(i));
    EXPECT_LE(f.size(), 1u);
    flips += static_cast<int>(f.size());
    for (unsigned b : f) EXPECT_LT(b, 39u);
  }
  EXPECT_NEAR(static_cast<double>(flips) / kN, 0.1, 0.01);
}

TEST(Injector, DoubleFlipsAreDistinctPositions) {
  InjectorConfig cfg;
  cfg.double_flip_prob = 1.0;
  cfg.word_bits = 39;
  FaultInjector inj(cfg);
  for (int i = 0; i < 500; ++i) {
    const auto f = inj.flips_for_access(static_cast<u64>(i));
    ASSERT_EQ(f.size(), 2u);
    EXPECT_NE(f[0], f[1]);
    EXPECT_LT(f[0], 39u);
    EXPECT_LT(f[1], 39u);
  }
  EXPECT_EQ(inj.injected_double(), 500u);
}

TEST(Injector, AdjacentDoublesStrikeNeighbouringBits) {
  InjectorConfig cfg;
  cfg.double_flip_prob = 1.0;
  cfg.adjacent_doubles = true;
  cfg.word_bits = 39;
  FaultInjector inj(cfg);
  bool saw_low = false, saw_high = false;
  for (int i = 0; i < 500; ++i) {
    const auto f = inj.flips_for_access(static_cast<u64>(i));
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[1], f[0] + 1) << "double upset must hit an adjacent pair";
    EXPECT_LT(f[1], 39u);
    saw_low |= f[0] < 8;
    saw_high |= f[0] >= 30;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
  EXPECT_EQ(inj.injected_double(), 500u);
}

TEST(Injector, DeterministicAcrossInstances) {
  InjectorConfig cfg;
  cfg.single_flip_prob = 0.5;
  cfg.seed = 99;
  FaultInjector a(cfg), b(cfg);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.flips_for_access(static_cast<u64>(i)),
              b.flips_for_access(static_cast<u64>(i)));
  }
}

}  // namespace
}  // namespace laec::ecc
