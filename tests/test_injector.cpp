#include "ecc/injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace laec::ecc {
namespace {

TEST(Injector, DisabledByDefault) {
  FaultInjector inj;
  EXPECT_FALSE(inj.enabled());
  EXPECT_TRUE(inj.flips_for_access(0).empty());
}

TEST(Injector, ScriptedFlipFiresOnceOnMatchingWord) {
  FaultInjector inj;
  inj.script_flip(7, 3);
  EXPECT_TRUE(inj.enabled());
  EXPECT_TRUE(inj.flips_for_access(5).empty());
  const auto f = inj.flips_for_access(7);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], 3u);
  EXPECT_TRUE(inj.flips_for_access(7).empty());  // consumed
  EXPECT_EQ(inj.injected_scripted(), 1u);
}

TEST(Injector, ScriptedFlipsAccumulate) {
  FaultInjector inj;
  inj.script_flip(1, 0);
  inj.script_flip(1, 5);
  const auto f = inj.flips_for_access(1);
  EXPECT_EQ(f.size(), 2u);
}

TEST(Injector, ScriptedPileUpBeyondFlipSetCapacityStaysQueued) {
  // The allocation-free FlipSet reserves two slots for the random draw;
  // an oversized scripted pile-up on one word delivers across successive
  // accesses instead of overflowing (or dropping) flips.
  FaultInjector inj;
  for (unsigned b = 0; b < 10; ++b) inj.script_flip(3, b);
  unsigned delivered = 0;
  int accesses = 0;
  while (inj.enabled() && accesses < 10) {
    const auto f = inj.flips_for_access(3);
    ASSERT_LE(f.size(), FlipSet::kMax);
    delivered += f.size();
    ++accesses;
  }
  EXPECT_EQ(delivered, 10u);
  EXPECT_EQ(inj.injected_scripted(), 10u);
  EXPECT_GE(accesses, 2);  // could not have fit in one access
}

TEST(Injector, SingleFlipRateApproximatelyHonored) {
  InjectorConfig cfg;
  cfg.single_flip_prob = 0.1;
  cfg.word_bits = 39;
  FaultInjector inj(cfg);
  int flips = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const auto f = inj.flips_for_access(static_cast<u64>(i));
    EXPECT_LE(f.size(), 1u);
    flips += static_cast<int>(f.size());
    for (unsigned b : f) EXPECT_LT(b, 39u);
  }
  EXPECT_NEAR(static_cast<double>(flips) / kN, 0.1, 0.01);
}

TEST(Injector, DoubleFlipsAreDistinctPositions) {
  InjectorConfig cfg;
  cfg.double_flip_prob = 1.0;
  cfg.word_bits = 39;
  FaultInjector inj(cfg);
  for (int i = 0; i < 500; ++i) {
    const auto f = inj.flips_for_access(static_cast<u64>(i));
    ASSERT_EQ(f.size(), 2u);
    EXPECT_NE(f[0], f[1]);
    EXPECT_LT(f[0], 39u);
    EXPECT_LT(f[1], 39u);
  }
  EXPECT_EQ(inj.injected_double(), 500u);
}

TEST(Injector, AdjacentDoublesStrikeNeighbouringBits) {
  InjectorConfig cfg;
  cfg.double_flip_prob = 1.0;
  cfg.adjacent_doubles = true;
  cfg.word_bits = 39;
  FaultInjector inj(cfg);
  bool saw_low = false, saw_high = false;
  for (int i = 0; i < 500; ++i) {
    const auto f = inj.flips_for_access(static_cast<u64>(i));
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[1], f[0] + 1) << "double upset must hit an adjacent pair";
    EXPECT_LT(f[1], 39u);
    saw_low |= f[0] < 8;
    saw_high |= f[0] >= 30;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
  EXPECT_EQ(inj.injected_double(), 500u);
}

TEST(Injector, DeterministicAcrossInstances) {
  InjectorConfig cfg;
  cfg.single_flip_prob = 0.5;
  cfg.seed = 99;
  FaultInjector a(cfg), b(cfg);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.flips_for_access(static_cast<u64>(i)),
              b.flips_for_access(static_cast<u64>(i)));
  }
}

TEST(Injector, ScriptedPlusRandomDrawFillsFlipSetExactlyToCapacity) {
  // kMax - 2 scripted flips plus a certain double draw: the reserve math
  // must land the set EXACTLY full, never over.
  InjectorConfig cfg;
  cfg.double_flip_prob = 1.0;
  cfg.word_bits = 39;
  FaultInjector inj(cfg);
  for (unsigned b = 0; b < FlipSet::kMax - 2; ++b) inj.script_flip(4, b);
  const auto f = inj.flips_for_access(4);
  EXPECT_EQ(f.size(), FlipSet::kMax);
  EXPECT_TRUE(f.full());
  EXPECT_EQ(inj.injected_scripted(), FlipSet::kMax - 2);
  EXPECT_EQ(inj.injected_double(), 1u);
}

TEST(Injector, PatternModeWidensTheScriptedReserve) {
  // With pattern events armed (worst case: a 4-flip cluster), the scripted
  // drain must leave 6 slots free — surplus stays queued for the next
  // access instead of overflowing.
  InjectorConfig cfg;
  cfg.event_prob = 1e-12;  // armed but effectively never fires
  cfg.patterns = {0.0, 0.0, 0.0, 1.0};
  cfg.word_bits = 39;
  FaultInjector inj(cfg);
  for (unsigned b = 0; b < 6; ++b) inj.script_flip(9, b);
  const auto first = inj.flips_for_access(9);
  EXPECT_EQ(first.size(), FlipSet::kMax - 6);
  unsigned delivered = first.size();
  int accesses = 1;
  while (inj.injected_scripted() < 6 && accesses < 10) {
    delivered += inj.flips_for_access(9).size();
    ++accesses;
  }
  EXPECT_EQ(delivered, 6u);
  EXPECT_EQ(inj.injected_scripted(), 6u);
  EXPECT_GE(accesses, 3);  // two slots per access
}

TEST(Injector, PatternTableDrawsEveryShapeWithTheRightGeometry) {
  InjectorConfig cfg;
  cfg.event_prob = 1.0;
  cfg.patterns = {0.25, 0.25, 0.25, 0.25};
  cfg.word_bits = 45;
  FaultInjector inj(cfg);
  int singles = 0, pairs = 0, triples = 0, clusters = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto f = inj.flips_for_access(static_cast<u64>(i));
    ASSERT_GE(f.size(), 1u);
    ASSERT_LE(f.size(), 4u);
    unsigned lo = 45, hi = 0;
    for (unsigned k = 0; k < f.size(); ++k) {
      ASSERT_LT(f[k], 45u);
      lo = std::min(lo, f[k]);
      hi = std::max(hi, f[k]);
      for (unsigned m = k + 1; m < f.size(); ++m) {
        ASSERT_NE(f[k], f[m]) << "duplicate flip position";
      }
    }
    const bool contiguous = hi - lo + 1 == f.size();
    if (f.size() == 1) {
      ++singles;
    } else if (f.size() == 2 && contiguous) {
      ++pairs;
    } else if (f.size() == 3 && contiguous) {
      ++triples;
    } else {
      // Clustered: confined to an 8-bit window. (A cluster CAN come out
      // contiguous by chance; the contiguous 2/3-flip draws above fold
      // those in, which only biases the shape counts, not the geometry.)
      ++clusters;
      EXPECT_LE(hi - lo, 7u) << "cluster escaped its 8-bit window";
    }
  }
  EXPECT_EQ(inj.injected_pattern(), 2000u);
  EXPECT_EQ(inj.injected_total(), 2000u);
  // Every shape must actually occur (weights are equal).
  EXPECT_GT(singles, 200);
  EXPECT_GT(pairs, 200);
  EXPECT_GT(triples, 100);
  EXPECT_GT(clusters, 100);
}

TEST(Injector, PatternEventsHonorTheEventProbability) {
  InjectorConfig cfg;
  cfg.event_prob = 0.05;
  cfg.patterns = {1.0, 0.0, 0.0, 0.0};
  cfg.word_bits = 39;
  FaultInjector inj(cfg);
  EXPECT_TRUE(inj.enabled());
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    (void)inj.flips_for_access(static_cast<u64>(i));
  }
  EXPECT_NEAR(static_cast<double>(inj.injected_pattern()) / kN, 0.05, 0.008);
}

}  // namespace
}  // namespace laec::ecc
