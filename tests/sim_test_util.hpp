// Shared helpers for the pipeline / system / kernel tests.
#pragma once

#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "isa/assembler.hpp"
#include "sim/system.hpp"

namespace laec::test {

/// A SimConfig with fast, deterministic defaults for unit tests.
inline core::SimConfig test_config(cpu::EccPolicy ecc) {
  core::SimConfig cfg;
  cfg.ecc = ecc;
  cfg.max_cycles = 20'000'000;
  return cfg;
}

/// Pre-fill a core's L1I with the program's text lines so chronograms are
/// not distorted by cold instruction misses.
inline void prefill_icache(sim::System& sys, const isa::Program& p,
                           unsigned core = 0) {
  auto& icache = sys.core(core).l1i().cache();
  const u32 lb = icache.line_bytes();
  const Addr begin = p.text_base & ~(lb - 1);
  const Addr end = p.text_base + static_cast<Addr>(4 * p.text.size());
  std::vector<u8> line(lb);
  for (Addr a = begin; a < end; a += lb) {
    sys.memsys().memory().read_block(a, line.data(), lb);
    icache.fill(a, line.data(), false);
  }
}

/// Pre-fill one DL1 line (making the next access a guaranteed hit).
inline void prefill_dl1(sim::System& sys, Addr addr, unsigned core = 0) {
  auto& dcache = sys.core(core).dl1().cache();
  const u32 lb = dcache.line_bytes();
  const Addr base = addr & ~(lb - 1);
  std::vector<u8> line(lb);
  sys.memsys().memory().read_block(base, line.data(), lb);
  dcache.fill(base, line.data(), false);
}

/// Assemble-run-return: run `p` to completion under `cfg` and return stats.
inline core::RunStats run(const core::SimConfig& cfg, const isa::Program& p) {
  return core::run_program(cfg, p);
}

/// Run and also expose the system for post-mortem inspection.
struct RunWithSystem {
  std::unique_ptr<sim::System> system;
  std::unique_ptr<ecc::FaultInjector> injector;  // when cfg.faults set
  core::RunStats stats;
};

inline RunWithSystem run_keep_system(const core::SimConfig& cfg,
                                     const isa::Program& p,
                                     bool warm_icache = false) {
  RunWithSystem r;
  r.system = std::make_unique<sim::System>(
      core::make_system_config(cfg, /*trace_mode=*/false));
  r.injector = core::attach_injector(*r.system, cfg);
  r.system->load_program(p);
  if (warm_icache) prefill_icache(*r.system, p);
  const auto res = r.system->run();
  r.stats = core::collect_stats(*r.system, res.completed);
  return r;
}

}  // namespace laec::test
