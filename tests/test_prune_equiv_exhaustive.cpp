// Exhaustive golden-run pruning equivalence sweep: every registered
// deployable codec x every pure MBU pattern shape x every inject target,
// pruned vs simulate-everything, rows byte-identical and severity totals
// equal. The fast cross-section of this contract runs in tier-1
// (test_prune_equiv); this is the full grid, labelled slow.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ecc/registry.hpp"
#include "reliability/campaign.hpp"

namespace laec::reliability {
namespace {

CampaignGrid grid_for(const std::string& scheme,
                      const ecc::MbuPatternTable& mix) {
  CampaignGrid grid;
  grid.workloads({"rspeed"}).schemes({scheme});
  grid.rates({{"hot", 1000.0, mix}});
  return grid;
}

CampaignSpec spec_for(core::InjectTarget target) {
  CampaignSpec spec;
  // Mid accel: a blend of pruned and simulated trials per cell.
  spec.accel = 3e15;
  spec.trials = 6;
  spec.target = target;
  spec.base.dl1_size_bytes = 2 * 1024;
  return spec;
}

/// Deployable codec keys, deduplicated by canonical codec name (legacy
/// aliases construct the same instances; 64-bit-word codes cannot back the
/// 32-bit-word arrays).
std::vector<std::string> deployable_codec_keys() {
  std::vector<std::string> keys;
  std::set<std::string> seen;
  for (const auto& key : ecc::registered_codecs()) {
    const auto codec = ecc::make_codec(key);
    if (codec->data_bits() != 32) continue;
    if (!seen.insert(std::string(codec->name())).second) continue;
    keys.push_back(key);
  }
  return keys;
}

u64 expect_equivalent(const CampaignGrid& grid, const CampaignSpec& spec,
                      const std::string& label) {
  CampaignSpec pruned = spec, full = spec;
  pruned.prune = true;
  full.prune = false;
  const auto a = run_campaign(grid, pruned);
  const auto b = run_campaign(grid, full);
  EXPECT_EQ(a.cells.size(), b.cells.size()) << label;
  u64 pruned_total = 0;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const auto& x = a.cells[i];
    const auto& y = b.cells[i];
    const std::string at = label + " cell " + std::to_string(i);
    EXPECT_EQ(campaign_to_row(x), campaign_to_row(y)) << at;
    EXPECT_EQ(x.trials, y.trials) << at;
    EXPECT_EQ(x.events, y.events) << at;
    EXPECT_EQ(x.events_dropped, y.events_dropped) << at;
    EXPECT_EQ(x.masked, y.masked) << at;
    EXPECT_EQ(x.corrected, y.corrected) << at;
    EXPECT_EQ(x.due_recovered, y.due_recovered) << at;
    EXPECT_EQ(x.sdc, y.sdc) << at;
    EXPECT_EQ(x.data_loss, y.data_loss) << at;
    EXPECT_EQ(x.total_cycles, y.total_cycles) << at;
    EXPECT_EQ(x.pruned, y.pruned) << at;
    EXPECT_DOUBLE_EQ(x.device_hours, y.device_hours) << at;
    EXPECT_LE(x.pruned, x.masked) << at;
    pruned_total += x.pruned;
  }
  return pruned_total;
}

TEST(PruneEquivExhaustive, EveryCodecEveryShapeEveryTarget) {
  const std::vector<std::pair<const char*, ecc::MbuPatternTable>> shapes = {
      {"single", {1.0, 0.0, 0.0, 0.0}},
      {"adj2", {0.0, 1.0, 0.0, 0.0}},
      {"adj3", {0.0, 0.0, 1.0, 0.0}},
      {"cluster", {0.0, 0.0, 0.0, 1.0}},
  };
  const auto codecs = deployable_codec_keys();
  ASSERT_GE(codecs.size(), 6u);
  u64 pruned = 0;
  for (const auto& codec : codecs) {
    for (const auto& [shape, mix] : shapes) {
      for (const auto target :
           {core::InjectTarget::kDl1, core::InjectTarget::kL1i,
            core::InjectTarget::kL2}) {
        pruned += expect_equivalent(
            grid_for(codec, mix), spec_for(target),
            codec + std::string("/") + shape + "/" +
                std::string(core::to_string(target)));
      }
    }
  }
  EXPECT_GT(pruned, 0u);
}

}  // namespace
}  // namespace laec::reliability
