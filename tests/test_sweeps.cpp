// Parameterized cross-configuration sweeps: the library's core invariants
// must hold at every point of the machine-configuration space, not just at
// the NGMP reference point.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"
#include "workloads/eembc.hpp"
#include "workloads/synthetic.hpp"

namespace laec {
namespace {

using cpu::EccPolicy;

struct Geometry {
  u32 dl1_kb;
  u32 ways;
  unsigned wbuf;
  unsigned div_lat;
  unsigned mem_cycles;
};

void apply(core::SimConfig& cfg, const Geometry& g) {
  cfg.dl1_size_bytes = g.dl1_kb * 1024;
  cfg.dl1_ways = g.ways;
  cfg.write_buffer_depth = g.wbuf;
  cfg.div_latency = g.div_lat;
  cfg.memory_cycles = g.mem_cycles;
}

class GeometrySweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(GeometrySweep, KernelCorrectAndOrderedEverywhere) {
  // One dependence-heavy kernel with divides and stores, across the
  // whole config space: results exact, scheme ordering preserved.
  const auto k = workloads::kernel_by_name("tblook").build();
  u64 cycles_noecc = 0, cycles_laec = 0, cycles_es = 0;
  for (EccPolicy p :
       {EccPolicy::kNoEcc, EccPolicy::kLaec, EccPolicy::kExtraStage}) {
    auto cfg = test::test_config(p);
    apply(cfg, GetParam());
    auto r = test::run_keep_system(cfg, k.program, /*warm_icache=*/true);
    ASSERT_TRUE(r.stats.completed);
    for (const auto& [addr, expect] : k.expected) {
      ASSERT_EQ(r.system->read_word_final(addr), expect);
    }
    if (p == EccPolicy::kNoEcc) cycles_noecc = r.stats.cycles;
    if (p == EccPolicy::kLaec) cycles_laec = r.stats.cycles;
    if (p == EccPolicy::kExtraStage) cycles_es = r.stats.cycles;
  }
  EXPECT_LE(cycles_noecc, cycles_laec);
  EXPECT_LE(cycles_laec, cycles_es);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GeometrySweep,
    ::testing::Values(Geometry{16, 4, 8, 12, 26},   // NGMP reference
                      Geometry{1, 1, 1, 1, 8},      // tiny and fast
                      Geometry{1, 4, 2, 34, 80},    // tiny, slow divider/mem
                      Geometry{64, 8, 16, 12, 26},  // large DL1
                      Geometry{4, 2, 4, 20, 50},    // mid-range
                      Geometry{16, 1, 8, 12, 26},   // direct-mapped
                      Geometry{8, 4, 32, 6, 12}),   // deep write buffer
    [](const auto& info) {
      const Geometry& g = info.param;
      return "dl1_" + std::to_string(g.dl1_kb) + "k_w" +
             std::to_string(g.ways) + "_wb" + std::to_string(g.wbuf) +
             "_div" + std::to_string(g.div_lat) + "_mem" +
             std::to_string(g.mem_cycles);
    });

class LineSizeSweep : public ::testing::TestWithParam<u32> {};

TEST_P(LineSizeSweep, CacheGeometryIndependence) {
  // Architectural results must not depend on the line size.
  const auto k = workloads::kernel_by_name("canrdr").build();
  auto cfg = test::test_config(EccPolicy::kLaec);
  cfg.dl1_line_bytes = GetParam();
  auto r = test::run_keep_system(cfg, k.program);
  ASSERT_TRUE(r.stats.completed);
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Lines, LineSizeSweep,
                         ::testing::Values(16u, 32u, 64u, 128u));

class TraceDepthSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TraceDepthSweep, WriteBufferDepthNeverChangesTraceResults) {
  // Timing changes, instruction count does not; determinism holds.
  workloads::SyntheticParams p;
  p.num_ops = 20'000;
  p.store_frac = 0.2;  // stress the buffer
  core::SimConfig cfg;
  cfg.ecc = EccPolicy::kLaec;
  cfg.write_buffer_depth = GetParam();
  workloads::SyntheticTrace t1(p);
  const auto a = core::run_trace(cfg, t1);
  workloads::SyntheticTrace t2(p);
  const auto b = core::run_trace(cfg, t2);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_GE(a.instructions, p.num_ops);
}

INSTANTIATE_TEST_SUITE_P(Depths, TraceDepthSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 64u));

TEST(Sweeps, ShallowerWriteBufferIsNeverFaster) {
  // More buffering can only help (or tie): stores stall less.
  workloads::SyntheticParams p;
  p.num_ops = 30'000;
  p.store_frac = 0.25;
  u64 prev = ~u64{0};
  for (unsigned depth : {1u, 4u, 16u}) {
    core::SimConfig cfg;
    cfg.ecc = EccPolicy::kNoEcc;
    cfg.write_buffer_depth = depth;
    workloads::SyntheticTrace t(p);
    const auto s = core::run_trace(cfg, t);
    EXPECT_LE(s.cycles, prev) << "depth " << depth;
    prev = s.cycles;
  }
}

TEST(Sweeps, SlowerMemoryMonotonicallySlowsMissyKernels) {
  const auto k = workloads::kernel_by_name("cacheb").build();
  u64 prev = 0;
  for (unsigned mem : {8u, 26u, 60u}) {
    auto cfg = test::test_config(EccPolicy::kNoEcc);
    cfg.memory_cycles = mem;
    auto r = test::run_keep_system(cfg, k.program);
    ASSERT_TRUE(r.stats.completed);
    EXPECT_GT(r.stats.cycles, prev);
    prev = r.stats.cycles;
  }
}

TEST(Sweeps, SmallerCacheLowersHitRate) {
  const auto k = workloads::kernel_by_name("matrix").build();
  double prev_hits = 0.0;
  for (u32 kb : {1u, 4u, 16u}) {
    auto cfg = test::test_config(EccPolicy::kNoEcc);
    cfg.dl1_size_bytes = kb * 1024;
    auto r = test::run_keep_system(cfg, k.program);
    EXPECT_GE(r.stats.hit_fraction() + 1e-9, prev_hits) << kb << "KB";
    prev_hits = r.stats.hit_fraction();
  }
  EXPECT_GT(prev_hits, 0.95);  // matrix fits comfortably at 16 KB
}

TEST(Sweeps, DivLatencyHitsDivideHeavyKernelsHardest) {
  const auto div_heavy = workloads::kernel_by_name("rspeed").build();
  const auto div_free = workloads::kernel_by_name("bitmnp").build();
  auto ratio_for = [&](const workloads::BuiltKernel& k) {
    auto fast = test::test_config(EccPolicy::kNoEcc);
    fast.div_latency = 1;
    auto slow = test::test_config(EccPolicy::kNoEcc);
    slow.div_latency = 34;
    const auto rf = test::run_keep_system(fast, k.program);
    const auto rs = test::run_keep_system(slow, k.program);
    return static_cast<double>(rs.stats.cycles) /
           static_cast<double>(rf.stats.cycles);
  };
  EXPECT_GT(ratio_for(div_heavy), 1.3);
  EXPECT_LT(ratio_for(div_free), 1.05);
}

class D1ShareSweep : public ::testing::TestWithParam<double> {};

TEST_P(D1ShareSweep, DistanceOneConsumersCostMoreUnderExtraStage) {
  // With total dep% fixed, shifting consumers toward distance 1 raises the
  // no-ECC baseline penalty (d1 stalls 1) but leaves the Extra Stage delta
  // (+1 per dependent load) constant — so measured ES overhead *ratios*
  // shrink slightly as d1_share grows. Mostly this guards the d1/d2
  // plumbing end to end.
  workloads::SyntheticParams p;
  p.num_ops = 40'000;
  p.d1_share = GetParam();
  core::SimConfig base;
  base.ecc = EccPolicy::kNoEcc;
  core::SimConfig es;
  es.ecc = EccPolicy::kExtraStage;
  workloads::SyntheticTrace t1(p);
  const auto b = core::run_trace(base, t1);
  workloads::SyntheticTrace t2(p);
  const auto e = core::run_trace(es, t2);
  EXPECT_GT(e.cycles, b.cycles);
  const double overhead = static_cast<double>(e.cycles) /
                              static_cast<double>(b.cycles) -
                          1.0;
  EXPECT_GT(overhead, 0.04);
  EXPECT_LT(overhead, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Shares, D1ShareSweep,
                         ::testing::Values(0.0, 0.33, 0.67, 1.0));

}  // namespace
}  // namespace laec
