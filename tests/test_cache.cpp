#include "mem/cache.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "ecc/registry.hpp"

namespace laec::mem {
namespace {

CacheConfig small_cfg(ecc::CodecKind codec = ecc::CodecKind::kNone) {
  CacheConfig c;
  c.name = "t";
  c.size_bytes = 1024;
  c.line_bytes = 32;
  c.ways = 2;
  c.codec = ecc::make_codec(codec);  // enum shim onto the registry
  return c;
}

std::vector<u8> line_of(u32 seed) {
  std::vector<u8> v(32);
  for (int i = 0; i < 32; ++i) v[static_cast<std::size_t>(i)] = static_cast<u8>(seed + i);
  return v;
}

TEST(Cache, FillThenHit) {
  SetAssocCache c(small_cfg());
  EXPECT_FALSE(c.contains(0x100));
  const auto data = line_of(5);
  c.fill(0x100, data.data(), false);
  EXPECT_TRUE(c.contains(0x100));
  EXPECT_TRUE(c.contains(0x11f));   // same line
  EXPECT_FALSE(c.contains(0x120));  // next line
}

TEST(Cache, ReadExtractsBytes) {
  SetAssocCache c(small_cfg());
  std::vector<u8> data(32, 0);
  const u32 word = 0xa1b2c3d4;
  std::memcpy(data.data() + 8, &word, 4);
  c.fill(0x200, data.data(), false);
  EXPECT_EQ(c.read(0x208, 4).value, 0xa1b2c3d4u);
  EXPECT_EQ(c.read(0x208, 2).value, 0xc3d4u);
  EXPECT_EQ(c.read(0x20a, 2).value, 0xa1b2u);
  EXPECT_EQ(c.read(0x20b, 1).value, 0xa1u);
}

TEST(Cache, SubWordWriteMerges) {
  SetAssocCache c(small_cfg(ecc::CodecKind::kSecded));
  std::vector<u8> data(32, 0);
  c.fill(0x300, data.data(), false);
  c.write(0x308, 4, 0x11223344, true);
  c.write(0x309, 1, 0xaa, true);
  EXPECT_EQ(c.read(0x308, 4).value, 0x1122aa44u);
  EXPECT_EQ(c.read(0x308, 4).check, ecc::CheckStatus::kOk);
}

TEST(Cache, DirtyTrackingWriteBack) {
  SetAssocCache c(small_cfg());
  const auto data = line_of(1);
  c.fill(0x400, data.data(), false);
  EXPECT_FALSE(c.line_dirty(0x400));
  c.write(0x400, 4, 1, true);
  EXPECT_TRUE(c.line_dirty(0x400));
}

TEST(Cache, WriteThroughNeverDirty) {
  auto cfg = small_cfg();
  cfg.write_policy = WritePolicy::kWriteThrough;
  SetAssocCache c(cfg);
  const auto data = line_of(1);
  c.fill(0x400, data.data(), false);
  c.write(0x400, 4, 1, true);
  EXPECT_FALSE(c.line_dirty(0x400));
}

TEST(Cache, LruEviction) {
  SetAssocCache c(small_cfg());  // 2 ways, 16 sets, 32B lines
  const auto d = line_of(0);
  // Three lines mapping to set 0 (stride = 16 sets * 32 B = 512).
  c.fill(0x0000, d.data(), false);
  c.fill(0x0200, d.data(), false);
  c.read(0x0000, 4);  // touch line 0 -> line at 0x200 becomes LRU
  const auto ev = c.fill(0x0400, d.data(), false);
  EXPECT_FALSE(ev.has_value());  // victim was clean
  EXPECT_TRUE(c.contains(0x0000));
  EXPECT_FALSE(c.contains(0x0200));
  EXPECT_TRUE(c.contains(0x0400));
}

TEST(Cache, DirtyEvictionReturnsData) {
  SetAssocCache c(small_cfg());
  const auto d = line_of(9);
  c.fill(0x0000, d.data(), false);
  c.write(0x0004, 4, 0xfeedface, true);
  c.fill(0x0200, d.data(), false);
  const auto ev = c.fill(0x0400, d.data(), false);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line_addr, 0x0000u);
  u32 w;
  std::memcpy(&w, ev->data.data() + 4, 4);
  EXPECT_EQ(w, 0xfeedfaceu);
}

TEST(Cache, SecdedCorrectsInjectedSingleBit) {
  SetAssocCache c(small_cfg(ecc::CodecKind::kSecded));
  ecc::FaultInjector inj;
  c.set_injector(&inj);
  std::vector<u8> data(32, 0);
  const u32 word = 0x5555aaaa;
  std::memcpy(data.data(), &word, 4);
  c.fill(0x500, data.data(), false);
  // Flip data bit 3 of the first word of the line.
  inj.script_flip((0x500 / 4) + 0, 3);
  const auto r = c.read(0x500, 4);
  EXPECT_EQ(r.check, ecc::CheckStatus::kCorrected);
  EXPECT_EQ(r.value, 0x5555aaaau);
  // Scrubbing repaired the array: the next read is clean.
  EXPECT_EQ(c.read(0x500, 4).check, ecc::CheckStatus::kOk);
  EXPECT_EQ(c.stats().value("ecc_corrected"), 1u);
}

TEST(Cache, SecdedDetectsDoubleBit) {
  SetAssocCache c(small_cfg(ecc::CodecKind::kSecded));
  ecc::FaultInjector inj;
  c.set_injector(&inj);
  std::vector<u8> data(32, 0x77);
  c.fill(0x600, data.data(), false);
  inj.script_flip(0x600 / 4, 2);
  inj.script_flip(0x600 / 4, 17);
  EXPECT_EQ(c.read(0x600, 4).check,
            ecc::CheckStatus::kDetectedUncorrectable);
  EXPECT_EQ(c.stats().value("ecc_detected_uncorrectable"), 1u);
}

TEST(Cache, ParityDetectsSingleBit) {
  SetAssocCache c(small_cfg(ecc::CodecKind::kParity));
  ecc::FaultInjector inj;
  c.set_injector(&inj);
  std::vector<u8> data(32, 0x10);
  c.fill(0x700, data.data(), false);
  inj.script_flip(0x700 / 4, 12);
  EXPECT_EQ(c.read(0x700, 4).check,
            ecc::CheckStatus::kDetectedUncorrectable);
}

TEST(Cache, CheckBitFlipAlsoCorrected) {
  SetAssocCache c(small_cfg(ecc::CodecKind::kSecded));
  ecc::FaultInjector inj;
  c.set_injector(&inj);
  std::vector<u8> data(32, 0x42);
  c.fill(0x800, data.data(), false);
  inj.script_flip(0x800 / 4, 32 + 3);  // a check bit
  const auto r = c.read(0x800, 4);
  EXPECT_EQ(r.check, ecc::CheckStatus::kCorrected);
  EXPECT_EQ(r.value, 0x42424242u);
}

TEST(Cache, InvalidateAndPeek) {
  SetAssocCache c(small_cfg());
  const auto d = line_of(3);
  c.fill(0x900, d.data(), false);
  EXPECT_EQ(c.peek_line(0x900), d);
  EXPECT_TRUE(c.invalidate(0x900));
  EXPECT_FALSE(c.contains(0x900));
  EXPECT_FALSE(c.invalidate(0x900));
}

TEST(Cache, FlushDirtyVisitsDirtyLinesOnly) {
  SetAssocCache c(small_cfg());
  const auto d = line_of(1);
  c.fill(0x000, d.data(), false);
  c.fill(0x020, d.data(), false);
  c.write(0x020, 4, 0x99, true);
  int visited = 0;
  c.flush_dirty([&](Addr a, const u8*) {
    ++visited;
    EXPECT_EQ(a, 0x020u);
  });
  EXPECT_EQ(visited, 1);
  EXPECT_FALSE(c.line_dirty(0x020));
}

TEST(Cache, WritebacksLeaveInCorrectedViewEvenWithoutScrub) {
  // scrub_on_correct=false keeps corrupted raw bytes in the array, but the
  // writeback read re-runs the codec (as hardware does): dirty evictions,
  // flush_dirty and peek_line must all deliver the corrected view, never
  // the raw flipped bits.
  CacheConfig cfg = small_cfg(ecc::CodecKind::kSecded);
  cfg.scrub_on_correct = false;
  SetAssocCache c(cfg);
  std::vector<u8> data(32, 0);
  const u32 word = 0x600df00d;
  std::memcpy(data.data(), &word, 4);
  c.fill(0x100, data.data(), /*dirty=*/true);

  ecc::FaultInjector inj;
  c.set_injector(&inj);
  inj.script_flip(0x100 / 4, 3);
  EXPECT_EQ(c.read(0x100, 4).check, ecc::CheckStatus::kCorrected);
  // Unscrubbed: a re-read still sees (and re-corrects) the same flip.
  EXPECT_EQ(c.read(0x100, 4).check, ecc::CheckStatus::kCorrected);

  const auto peek = c.peek_line(0x100);
  u32 got;
  std::memcpy(&got, peek.data(), 4);
  EXPECT_EQ(got, word);

  bool flushed = false;
  c.flush_dirty([&](Addr base, const u8* bytes) {
    EXPECT_EQ(base, 0x100u);
    std::memcpy(&got, bytes, 4);
    flushed = true;
  });
  EXPECT_TRUE(flushed);
  EXPECT_EQ(got, word);
}

TEST(Cache, SubWordWriteCorrectsBeforeMergingWithoutScrub) {
  // A standing (unscrubbed) correctable error must not be re-encoded under
  // fresh check bits by a byte store's read-modify-write — that would
  // launder the flip into a valid codeword no later read could repair.
  CacheConfig cfg = small_cfg(ecc::CodecKind::kSecded);
  cfg.scrub_on_correct = false;
  SetAssocCache c(cfg);
  std::vector<u8> data(32, 0);
  const u32 word = 0x11223344;
  std::memcpy(data.data(), &word, 4);
  c.fill(0x100, data.data(), /*dirty=*/true);

  ecc::FaultInjector inj;
  c.set_injector(&inj);
  inj.script_flip(0x100 / 4, 12);  // lands in byte 1
  EXPECT_EQ(c.read(0x100, 4).check, ecc::CheckStatus::kCorrected);

  // Overwrite byte 0 only; bytes 1-3 must come out of the codec, clean.
  c.write(0x100, 1, 0xaa, /*mark_dirty=*/true);
  const auto after = c.read(0x100, 4);
  EXPECT_EQ(after.check, ecc::CheckStatus::kOk);
  EXPECT_EQ(after.value, 0x112233aau);
}

}  // namespace
}  // namespace laec::mem
