#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/isa.hpp"

namespace laec::isa {
namespace {

TEST(Encoding, AluRegRegRoundTrip) {
  DecodedInst d;
  d.op = Op::kAdd;
  d.rd = 5;
  d.rs1 = 3;
  d.rs2 = 4;
  EXPECT_EQ(decode(encode(d)), d);
}

TEST(Encoding, AluImmRoundTrip) {
  DecodedInst d;
  d.op = Op::kXor;
  d.rd = 31;
  d.rs1 = 1;
  d.uses_imm = true;
  for (i32 imm : {kImmMin, -1, 0, 1, 1000, kImmMax}) {
    d.imm = imm;
    EXPECT_EQ(decode(encode(d)), d) << "imm=" << imm;
  }
}

TEST(Encoding, LoadStoreBothForms) {
  for (Op op : {Op::kLw, Op::kLh, Op::kLhu, Op::kLb, Op::kLbu, Op::kSw,
                Op::kSh, Op::kSb}) {
    DecodedInst rr;
    rr.op = op;
    rr.rd = 7;
    rr.rs1 = 8;
    rr.rs2 = 9;
    EXPECT_EQ(decode(encode(rr)), rr);
    DecodedInst ri = rr;
    ri.rs2 = 0;
    ri.uses_imm = true;
    ri.imm = -64;
    EXPECT_EQ(decode(encode(ri)), ri);
  }
}

TEST(Encoding, BranchDisplacementRange) {
  DecodedInst d;
  d.op = Op::kBne;
  d.rs1 = 2;
  d.rs2 = 3;
  d.uses_imm = true;
  for (i32 disp : {kBranchDispMin, -1, 1, kBranchDispMax}) {
    d.imm = disp;
    EXPECT_EQ(decode(encode(d)), d) << "disp=" << disp;
  }
}

TEST(Encoding, JalAndLui20BitImmediates) {
  for (Op op : {Op::kJal, Op::kLui}) {
    DecodedInst d;
    d.op = op;
    d.rd = 1;
    d.uses_imm = true;
    for (i32 imm : {kImm20Min, -1, 0, 12345, kImm20Max}) {
      d.imm = imm;
      EXPECT_EQ(decode(encode(d)), d);
    }
  }
}

TEST(Encoding, UnknownOpcodeDecodesToHalt) {
  EXPECT_EQ(decode(0xffffffffu).op, Op::kHalt);
}

TEST(Encoding, OpClassification) {
  EXPECT_EQ(op_class(Op::kLw), OpClass::kLoad);
  EXPECT_EQ(op_class(Op::kSb), OpClass::kStore);
  EXPECT_EQ(op_class(Op::kBgeu), OpClass::kBranch);
  EXPECT_EQ(op_class(Op::kJalr), OpClass::kJump);
  EXPECT_EQ(op_class(Op::kMulh), OpClass::kAlu);
  EXPECT_EQ(op_class(Op::kNop), OpClass::kNop);
}

TEST(Encoding, SourceAndDestQueries) {
  DecodedInst ld;
  ld.op = Op::kLw;
  ld.rd = 3;
  ld.rs1 = 1;
  ld.rs2 = 2;
  EXPECT_EQ(ld.dest(), std::optional<u8>(3));
  EXPECT_EQ(ld.exec_srcs()[0], std::optional<u8>(1));
  EXPECT_EQ(ld.exec_srcs()[1], std::optional<u8>(2));
  EXPECT_FALSE(ld.store_data_src().has_value());

  DecodedInst st;
  st.op = Op::kSw;
  st.rd = 3;  // data
  st.rs1 = 1;
  st.uses_imm = true;
  EXPECT_FALSE(st.dest().has_value());
  EXPECT_EQ(st.store_data_src(), std::optional<u8>(3));
  EXPECT_EQ(st.exec_srcs()[0], std::optional<u8>(1));
  EXPECT_FALSE(st.exec_srcs()[1].has_value());

  DecodedInst zero;
  zero.op = Op::kAdd;
  zero.rd = 0;  // writes to r0 are discarded
  EXPECT_FALSE(zero.dest().has_value());
}

TEST(Encoding, MemAccessBytes) {
  EXPECT_EQ(mem_access_bytes(Op::kLw), 4u);
  EXPECT_EQ(mem_access_bytes(Op::kSh), 2u);
  EXPECT_EQ(mem_access_bytes(Op::kLbu), 1u);
  EXPECT_EQ(mem_access_bytes(Op::kAdd), 0u);
}

TEST(Encoding, RandomRoundTripSweep) {
  Rng rng(1234);
  for (int i = 0; i < 5000; ++i) {
    DecodedInst d;
    d.op = static_cast<Op>(rng.below(static_cast<u64>(Op::kOpCount)));
    const OpClass cls = op_class(d.op);
    if (d.op == Op::kLui || d.op == Op::kJal) {
      d.rd = static_cast<u8>(rng.below(32));
      d.uses_imm = true;
      d.imm = static_cast<i32>(rng.range(kImm20Min, kImm20Max));
    } else if (cls == OpClass::kBranch) {
      d.rs1 = static_cast<u8>(rng.below(32));
      d.rs2 = static_cast<u8>(rng.below(32));
      d.uses_imm = true;
      d.imm = static_cast<i32>(rng.range(kBranchDispMin, kBranchDispMax));
    } else if (cls == OpClass::kNop || cls == OpClass::kHalt) {
      // no operands
    } else {
      d.rd = static_cast<u8>(rng.below(32));
      d.rs1 = static_cast<u8>(rng.below(32));
      if (rng.chance(0.5)) {
        d.uses_imm = true;
        d.imm = static_cast<i32>(rng.range(kImmMin, kImmMax));
      } else {
        d.rs2 = static_cast<u8>(rng.below(32));
      }
    }
    EXPECT_EQ(decode(encode(d)), d);
  }
}

}  // namespace
}  // namespace laec::isa
