#include "cpu/pipeline.hpp"

#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace laec::cpu {
namespace {

using isa::Assembler;
using isa::R;
using test::run_keep_system;
using test::test_config;

TEST(Pipeline, ArithmeticProgramComputes) {
  Assembler a("arith");
  const Addr out = a.data_fill(8, 0);
  a.li(R{1}, 6).li(R{2}, 7);
  a.mul(R{3}, R{1}, R{2});       // 42
  a.addi(R{4}, R{3}, 100);       // 142
  a.sub(R{5}, R{4}, R{1});       // 136
  a.xori(R{6}, R{5}, 0xff);      // 136 ^ 255 = 119
  a.slli(R{7}, R{6}, 4);         // 1904
  a.srai(R{8}, R{7}, 2);         // 476
  a.div(R{9}, R{8}, R{2});       // 68
  a.rem(R{10}, R{8}, R{9});      // 476 % 68 = 0
  a.li(R{20}, out);
  a.sw(R{3}, R{20}, 0);
  a.sw(R{9}, R{20}, 4);
  a.sw(R{10}, R{20}, 8);
  a.halt();
  auto r = run_keep_system(test_config(EccPolicy::kNoEcc), a.finish());
  ASSERT_TRUE(r.stats.completed);
  EXPECT_EQ(r.system->read_word_final(out), 42u);
  EXPECT_EQ(r.system->read_word_final(out + 4), 68u);
  EXPECT_EQ(r.system->read_word_final(out + 8), 0u);
}

TEST(Pipeline, LoadStoreByteHalfWord) {
  Assembler a("mem");
  const Addr buf = a.data_words({0x11223344, 0, 0, 0});
  a.li(R{1}, buf);
  a.lb(R{2}, R{1}, 0);    // 0x44
  a.lbu(R{3}, R{1}, 3);   // 0x11
  a.lh(R{4}, R{1}, 0);    // 0x3344
  a.lhu(R{5}, R{1}, 2);   // 0x1122
  a.sb(R{2}, R{1}, 4);
  a.sh(R{4}, R{1}, 8);
  a.sw(R{5}, R{1}, 12);
  a.halt();
  auto r = run_keep_system(test_config(EccPolicy::kNoEcc), a.finish());
  ASSERT_TRUE(r.stats.completed);
  EXPECT_EQ(r.system->read_word_final(buf + 4), 0x44u);
  EXPECT_EQ(r.system->read_word_final(buf + 8), 0x3344u);
  EXPECT_EQ(r.system->read_word_final(buf + 12), 0x1122u);
}

TEST(Pipeline, SignExtensionOnLoads) {
  Assembler a("sext");
  const Addr buf = a.data_words({0xfffe80ffu});
  const Addr out = a.data_fill(3, 0);
  a.li(R{1}, buf);
  a.lb(R{2}, R{1}, 1);    // 0x80 -> -128
  a.lh(R{3}, R{1}, 2);    // 0xfffe -> -2
  a.lbu(R{4}, R{1}, 1);   // 0x80 -> 128
  a.li(R{10}, out);
  a.sw(R{2}, R{10}, 0);
  a.sw(R{3}, R{10}, 4);
  a.sw(R{4}, R{10}, 8);
  a.halt();
  auto r = run_keep_system(test_config(EccPolicy::kNoEcc), a.finish());
  EXPECT_EQ(r.system->read_word_final(out), static_cast<u32>(-128));
  EXPECT_EQ(r.system->read_word_final(out + 4), static_cast<u32>(-2));
  EXPECT_EQ(r.system->read_word_final(out + 8), 128u);
}

TEST(Pipeline, BranchesAndLoops) {
  Assembler a("loop");
  const Addr out = a.data_fill(1, 0);
  a.li(R{1}, 0).li(R{2}, 10);
  a.label("top");
  a.add(R{3}, R{3}, R{1});
  a.addi(R{1}, R{1}, 1);
  a.blt(R{1}, R{2}, "top");
  a.li(R{10}, out);
  a.sw(R{3}, R{10}, 0);
  a.halt();
  auto r = run_keep_system(test_config(EccPolicy::kNoEcc), a.finish());
  EXPECT_EQ(r.system->read_word_final(out), 45u);  // 0+1+...+9
  EXPECT_GE(r.stats.pipeline_stats.value("taken_branches"), 9u);
  EXPECT_GT(r.stats.pipeline_stats.value("squashed"), 0u);
}

TEST(Pipeline, JalAndJalrSubroutine) {
  Assembler a("call");
  const Addr out = a.data_fill(1, 0);
  a.li(R{10}, out);
  a.jal(R{31}, "func");
  a.sw(R{1}, R{10}, 0);   // after return: r1 == 77
  a.halt();
  a.label("func");
  a.li(R{1}, 77);
  a.jalr(R{0}, R{31}, 0);
  auto r = run_keep_system(test_config(EccPolicy::kNoEcc), a.finish());
  ASSERT_TRUE(r.stats.completed);
  EXPECT_EQ(r.system->read_word_final(out), 77u);
}

TEST(Pipeline, DivOccupiesExIteratively) {
  Assembler a("div");
  a.li(R{1}, 1000).li(R{2}, 10);
  a.div(R{3}, R{1}, R{2});
  a.halt();
  auto cfg_fast = test_config(EccPolicy::kNoEcc);
  cfg_fast.div_latency = 1;
  auto cfg_slow = test_config(EccPolicy::kNoEcc);
  cfg_slow.div_latency = 20;
  const auto fast = run_keep_system(cfg_fast, a.finish());
  Assembler b("div2");
  b.li(R{1}, 1000).li(R{2}, 10);
  b.div(R{3}, R{1}, R{2});
  b.halt();
  const auto slow = run_keep_system(cfg_slow, b.finish());
  EXPECT_GE(slow.stats.cycles, fast.stats.cycles + 18);
}

TEST(Pipeline, DivideByZeroYieldsAllOnes) {
  Assembler a("div0");
  const Addr out = a.data_fill(2, 0);
  a.li(R{1}, 5).li(R{2}, 0);
  a.div(R{3}, R{1}, R{2});
  a.rem(R{4}, R{1}, R{2});
  a.li(R{10}, out);
  a.sw(R{3}, R{10}, 0);
  a.sw(R{4}, R{10}, 4);
  a.halt();
  auto r = run_keep_system(test_config(EccPolicy::kNoEcc), a.finish());
  EXPECT_EQ(r.system->read_word_final(out), 0xffffffffu);
  EXPECT_EQ(r.system->read_word_final(out + 4), 5u);
}

TEST(Pipeline, LoadUsePenaltyOneCycleInBaseline) {
  // Two otherwise identical loops; one consumes the load at distance 1.
  // A loop (warm L1I) isolates the per-iteration penalty from cold-start
  // instruction misses.
  constexpr int kIters = 100;
  auto build = [](bool dependent) {
    Assembler a("p");
    const Addr buf = a.data_words({5, 6, 7, 8});
    a.li(R{1}, buf);
    a.li(R{2}, kIters);
    a.label("loop");
    a.lw(R{3}, R{1}, 0);
    if (dependent) {
      a.add(R{4}, R{3}, R{4});  // distance 1
    } else {
      a.add(R{4}, R{5}, R{4});  // independent
    }
    a.subi(R{2}, R{2}, 1);
    a.bne(R{2}, R{0}, "loop");
    a.halt();
    return a.finish();
  };
  const auto dep = run_keep_system(test_config(EccPolicy::kNoEcc), build(true));
  const auto ind =
      run_keep_system(test_config(EccPolicy::kNoEcc), build(false));
  // ~1 extra cycle per iteration.
  EXPECT_GE(dep.stats.cycles, ind.stats.cycles + kIters - 15);
  EXPECT_LE(dep.stats.cycles, ind.stats.cycles + kIters + 15);
}

TEST(Pipeline, WriteBufferFullBackpressures) {
  // A burst of stores larger than the write buffer must stall but still
  // complete architecturally.
  Assembler a("burst");
  const Addr buf = a.data_fill(32, 0);
  a.li(R{1}, buf);
  for (int i = 0; i < 32; ++i) {
    a.li(R{2}, static_cast<u32>(i + 1));
    a.sw(R{2}, R{1}, static_cast<i32>(4 * i));
  }
  a.halt();
  auto cfg = test_config(EccPolicy::kNoEcc);
  cfg.write_buffer_depth = 2;
  auto r = run_keep_system(cfg, a.finish());
  ASSERT_TRUE(r.stats.completed);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(r.system->read_word_final(buf + static_cast<Addr>(4 * i)),
              static_cast<u32>(i + 1));
  }
  EXPECT_GT(r.stats.pipeline_stats.value("stall_wb_full"), 0u);
}

TEST(Pipeline, LoadsWaitForWriteBufferDrain) {
  // store then load: the load must stall until the buffer is empty
  // (paper §III.B), which also guarantees it observes the stored value.
  Assembler a("st_ld");
  const Addr buf = a.data_fill(1, 0);
  const Addr out = a.data_fill(1, 0);
  a.li(R{1}, buf);
  a.li(R{2}, 0xbeef);
  a.sw(R{2}, R{1}, 0);
  a.lw(R{3}, R{1}, 0);
  a.li(R{10}, out);
  a.sw(R{3}, R{10}, 0);
  a.halt();
  auto r = run_keep_system(test_config(EccPolicy::kNoEcc), a.finish());
  EXPECT_EQ(r.system->read_word_final(out), 0xbeefu);
  EXPECT_GT(r.stats.pipeline_stats.value("stall_wb_drain"), 0u);
}

TEST(Pipeline, HaltDrainsCleanly) {
  Assembler a("halt");
  a.nop();
  a.nop();
  a.halt();
  auto r = run_keep_system(test_config(EccPolicy::kNoEcc), a.finish());
  ASSERT_TRUE(r.stats.completed);
  EXPECT_EQ(r.stats.instructions, 3u);
}

TEST(Pipeline, MaxCyclesSafetyStop) {
  Assembler a("inf");
  a.label("spin");
  a.j("spin");
  auto cfg = test_config(EccPolicy::kNoEcc);
  cfg.max_cycles = 2000;
  auto r = run_keep_system(cfg, a.finish());
  EXPECT_FALSE(r.stats.completed);
}

class AllPoliciesSameArchState
    : public ::testing::TestWithParam<EccPolicy> {};

TEST_P(AllPoliciesSameArchState, MixedProgram) {
  // One moderately hairy program: loops, loads, stores, hazards.
  Assembler a("mixed");
  const Addr buf = a.data_fill(64, 0);
  const Addr out = a.data_fill(1, 0);
  a.li(R{1}, buf).li(R{2}, 16).li(R{5}, 3);
  a.label("fill");
  a.mul(R{3}, R{2}, R{5});
  a.sw(R{3}, R{1}, 0);
  a.addi(R{1}, R{1}, 4);
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "fill");
  a.li(R{1}, buf).li(R{2}, 16).li(R{6}, 0);
  a.label("sum");
  a.lw(R{3}, R{1}, 0);
  a.add(R{6}, R{6}, R{3});
  a.addi(R{1}, R{1}, 4);
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "sum");
  a.li(R{10}, out);
  a.sw(R{6}, R{10}, 0);
  a.halt();
  auto r = run_keep_system(test_config(GetParam()), a.finish());
  ASSERT_TRUE(r.stats.completed);
  // sum over m in 1..16 of 3m = 3 * 136 = 408
  EXPECT_EQ(r.system->read_word_final(out), 408u);
}

INSTANTIATE_TEST_SUITE_P(Policies, AllPoliciesSameArchState,
                         ::testing::Values(EccPolicy::kNoEcc,
                                           EccPolicy::kExtraCycle,
                                           EccPolicy::kExtraStage,
                                           EccPolicy::kLaec,
                                           EccPolicy::kWtParity));

}  // namespace
}  // namespace laec::cpu
