// Unit tests for the stride predictor and integration tests for the
// stride-predicted look-ahead extension.
#include "core/predictor.hpp"

#include <gtest/gtest.h>

#include "sim_test_util.hpp"
#include "workloads/eembc.hpp"

namespace laec::core {
namespace {

using cpu::EccPolicy;
using isa::Assembler;
using isa::R;

TEST(StridePredictor, ColdTableDoesNotPredict) {
  StridePredictor p;
  EXPECT_FALSE(p.predict(0x1000).has_value());
}

TEST(StridePredictor, LearnsConstantStride) {
  StridePredictor p;
  for (Addr a = 0x100; a < 0x140; a += 8) p.train(0x1000, a);
  const auto pred = p.predict(0x1000);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(*pred, 0x140u);
}

TEST(StridePredictor, ZeroStrideIsAStride) {
  StridePredictor p;
  for (int i = 0; i < 6; ++i) p.train(0x2000, 0x500);
  const auto pred = p.predict(0x2000);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(*pred, 0x500u);
}

TEST(StridePredictor, RandomWalkStaysQuiet) {
  StridePredictor p;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    p.train(0x3000, static_cast<Addr>(rng.below(1 << 20)) & ~3u);
  }
  // Confidence never accumulates on an incompressible stream.
  EXPECT_FALSE(p.predict(0x3000).has_value());
}

TEST(StridePredictor, ConfidenceDecaysBeforeRetraining) {
  StridePredictor p;
  for (Addr a = 0; a < 64; a += 4) p.train(0x4000, a);
  ASSERT_TRUE(p.predict(0x4000).has_value());
  // One break in the pattern lowers confidence but keeps the old stride.
  p.train(0x4000, 0x1000);
  p.train(0x4000, 0x1004);
  p.train(0x4000, 0x1008);
  const auto pred = p.predict(0x4000);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(*pred, 0x100cu);
}

TEST(StridePredictor, DistinctPcsDoNotAlias) {
  StridePredictor p;
  for (Addr a = 0; a < 64; a += 4) {
    p.train(0x5000, a);
    p.train(0x5004, 0x800 + 2 * a);
  }
  ASSERT_TRUE(p.predict(0x5000).has_value());
  ASSERT_TRUE(p.predict(0x5004).has_value());
  EXPECT_EQ(*p.predict(0x5000), 64u);          // last 60, stride 4
  EXPECT_EQ(*p.predict(0x5004), 0x800u + 128u);  // last 0x800+120, stride 8
}

// ---------------------------------------------------------------------------
// Pipeline integration
// ---------------------------------------------------------------------------

/// Strided address producer at distance 1: plain LAEC is fully blocked,
/// the stride extension should recover most loads.
isa::Program strided_addr_dep_program(int iters) {
  Assembler a("strided");
  const Addr buf = a.data_fill(512, 0);
  a.li(R{1}, buf);
  a.li(R{2}, static_cast<u32>(iters));
  a.li(R{3}, 0);
  a.label("loop");
  a.add(R{4}, R{1}, R{3});   // address producer (stride 4 per iteration)
  a.lw(R{5}, R{4}, 0);       // blocked for plain LAEC
  a.add(R{6}, R{6}, R{5});
  a.addi(R{3}, R{3}, 4);
  a.andi(R{3}, R{3}, 0x1fc); // wrap inside the buffer
  a.subi(R{2}, R{2}, 1);
  a.bne(R{2}, R{0}, "loop");
  a.halt();
  return a.finish();
}

TEST(StrideLookahead, RecoversStridedAddressDependentLoads) {
  const auto prog = strided_addr_dep_program(200);
  auto plain = test::test_config(EccPolicy::kLaec);
  auto pred = test::test_config(EccPolicy::kLaec);
  pred.stride_predictor = true;
  const auto rp = test::run_keep_system(plain, prog, /*warm_icache=*/true);
  const auto rs = test::run_keep_system(pred, prog, /*warm_icache=*/true);
  ASSERT_TRUE(rp.stats.completed);
  ASSERT_TRUE(rs.stats.completed);
  EXPECT_GT(rs.stats.pipeline_stats.value("pred_used"), 150u);
  EXPECT_LT(rs.stats.cycles, rp.stats.cycles);  // the extension pays off
}

TEST(StrideLookahead, ArchitecturallyInvisible) {
  const auto prog = strided_addr_dep_program(100);
  auto plain = test::test_config(EccPolicy::kLaec);
  auto pred = test::test_config(EccPolicy::kLaec);
  pred.stride_predictor = true;
  auto rp = test::run_keep_system(plain, prog);
  auto rs = test::run_keep_system(pred, prog);
  for (unsigned i = 1; i < 28; ++i) {
    EXPECT_EQ(rp.system->core(0).pipeline().reg(i),
              rs.system->core(0).pipeline().reg(i))
        << "r" << i;
  }
}

TEST(StrideLookahead, MispredictsReplaySafely) {
  // Pointer-chase: the next address comes from the loaded value — stride
  // prediction learns nothing useful; wrong predictions must not corrupt
  // results or break the Extra Stage fallback.
  const auto k = laec::workloads::kernel_by_name("pntrch").build();
  auto cfg = test::test_config(EccPolicy::kLaec);
  cfg.stride_predictor = true;
  auto r = test::run_keep_system(cfg, k.program);
  ASSERT_TRUE(r.stats.completed);
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

TEST(StrideLookahead, AllKernelsStillSelfCheck) {
  for (const auto& entry : laec::workloads::eembc_kernels()) {
    const auto k = entry.build();
    auto cfg = test::test_config(EccPolicy::kLaec);
    cfg.stride_predictor = true;
    auto r = test::run_keep_system(cfg, k.program);
    ASSERT_TRUE(r.stats.completed) << entry.name;
    for (const auto& [addr, expect] : k.expected) {
      ASSERT_EQ(r.system->read_word_final(addr), expect) << entry.name;
    }
  }
}

TEST(StrideLookahead, NeverSlowerThanPlainLaecOnKernels) {
  for (const char* name : {"matrix", "aifirf", "bitmnp", "tblook"}) {
    const auto k = laec::workloads::kernel_by_name(name).build();
    auto plain = test::test_config(EccPolicy::kLaec);
    auto pred = test::test_config(EccPolicy::kLaec);
    pred.stride_predictor = true;
    const auto rp = test::run_keep_system(plain, k.program, true);
    const auto rs = test::run_keep_system(pred, k.program, true);
    EXPECT_LE(rs.stats.cycles, rp.stats.cycles + 4) << name;
  }
}

}  // namespace
}  // namespace laec::core
