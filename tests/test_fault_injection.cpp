// End-to-end soft-error behaviour (DESIGN.md §6):
//  * SECDED WB DL1: injected single-bit flips are corrected transparently —
//    full-kernel results remain bit-exact;
//  * WT+parity DL1: flips are recovered by refetch from the clean L2 copy;
//  * double flips under SECDED raise detected-uncorrectable events.
#include <gtest/gtest.h>

#include "ecc/registry.hpp"
#include "mem/cache.hpp"
#include "sim_test_util.hpp"
#include "workloads/eembc.hpp"

namespace laec {
namespace {

using cpu::EccPolicy;
using workloads::kernel_by_name;

core::SimConfig faulty_config(EccPolicy ecc, double single, double dbl) {
  auto cfg = test::test_config(ecc);
  ecc::InjectorConfig inj;
  inj.single_flip_prob = single;
  inj.double_flip_prob = dbl;
  inj.seed = 0xdead;
  cfg.faults = inj;
  return cfg;
}

TEST(FaultInjection, SecdedKernelSurvivesSingleBitStorm) {
  const auto k = kernel_by_name("tblook").build();
  auto r = test::run_keep_system(faulty_config(EccPolicy::kLaec, 0.001, 0.0),
                                 k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.ecc_corrected, 0u) << "storm did not land any flips";
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

TEST(FaultInjection, ExtraStageAlsoCorrects) {
  const auto k = kernel_by_name("aifirf").build();
  auto r = test::run_keep_system(
      faulty_config(EccPolicy::kExtraStage, 0.001, 0.0), k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.ecc_corrected, 0u);
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

TEST(FaultInjection, WtParityRecoversByRefetch) {
  const auto k = kernel_by_name("canrdr").build();
  auto r = test::run_keep_system(
      faulty_config(EccPolicy::kWtParity, 0.001, 0.0), k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.parity_refetches, 0u);
  // WT keeps the L2 copy clean, so recovery is lossless.
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

TEST(FaultInjection, DoubleBitFlipsAreDetectedNotMiscorrected) {
  const auto k = kernel_by_name("puwmod").build();
  auto r = test::run_keep_system(
      faulty_config(EccPolicy::kLaec, 0.0, 0.0005), k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.ecc_detected_uncorrectable, 0u);
}

TEST(FaultInjection, UnprotectedCacheSilentlyCorrupts) {
  // Negative control: the same storm against a no-ECC DL1 must corrupt at
  // least one self-check — demonstrating why WB DL1 needs SECDED at all.
  const auto k = kernel_by_name("matrix").build();
  auto r = test::run_keep_system(faulty_config(EccPolicy::kNoEcc, 0.002, 0.0),
                                 k.program);
  ASSERT_TRUE(r.stats.completed);
  int mismatches = 0;
  for (const auto& [addr, expect] : k.expected) {
    mismatches += r.system->read_word_final(addr) != expect;
  }
  EXPECT_GT(mismatches, 0);
}

// ---------------------------------------------------------------------------
// Targeted injection: the same storm machinery aimed at the L1I or the L2.
// ---------------------------------------------------------------------------

TEST(FaultInjection, L1iTargetedStormRecoversByRefetch) {
  // Parity-protected instruction lines are always clean; every detected
  // flip recovers losslessly by invalidate-and-refetch.
  const auto k = kernel_by_name("tblook").build();
  auto cfg = faulty_config(EccPolicy::kLaec, 0.001, 0.0);
  cfg.inject_target = core::InjectTarget::kL1i;
  auto r = test::run_keep_system(cfg, k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.l1i_refetches, 0u) << "storm did not land any flips";
  EXPECT_EQ(r.stats.ecc_corrected, 0u) << "the DL1 was not the target";
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

TEST(FaultInjection, L2TargetedAdjacentStormSecDaecAtL2Corrects) {
  // Deploy SEC-DAEC at the L2 via a compound key and drive an adjacent
  // double-bit storm into the L2 array: every pair is corrected in place,
  // writebacks survive, results stay bit-exact. A tiny DL1 forces heavy
  // writeback/refill traffic through the L2.
  const auto k = kernel_by_name("matrix").build();
  auto cfg = test::test_config(EccPolicy::kLaec);
  cfg.set_scheme("laec+l2:sec-daec-39-32");
  cfg.dl1_size_bytes = 1024;
  ecc::InjectorConfig inj;
  inj.double_flip_prob = 0.002;
  inj.adjacent_doubles = true;
  inj.seed = 0xdead;
  cfg.faults = inj;
  cfg.inject_target = core::InjectTarget::kL2;
  auto r = test::run_keep_system(cfg, k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.l2_corrected_adjacent, 0u) << "storm missed the L2";
  EXPECT_EQ(r.stats.l2_data_loss_events, 0u);
  EXPECT_EQ(r.stats.ecc_corrected, 0u) << "the DL1 was not the target";
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

TEST(FaultInjection, L2TargetedAdjacentStormSecdedOnlyDetects) {
  // The same storm against the default SECDED L2: adjacent pairs are DUEs.
  // Clean lines refetch losslessly; pairs landing on dirty writeback lines
  // are data-loss events — the gap fig9_hierarchy quantifies.
  const auto k = kernel_by_name("matrix").build();
  auto cfg = test::test_config(EccPolicy::kLaec);
  cfg.dl1_size_bytes = 1024;
  ecc::InjectorConfig inj;
  inj.double_flip_prob = 0.002;
  inj.adjacent_doubles = true;
  inj.seed = 0xdead;
  cfg.faults = inj;
  cfg.inject_target = core::InjectTarget::kL2;
  auto r = test::run_keep_system(cfg, k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.l2_detected_uncorrectable, 0u);
  EXPECT_GT(r.stats.l2_refetches, 0u);
  EXPECT_EQ(r.stats.l2_corrected_adjacent, 0u);
}

TEST(FaultInjection, L1iReadOnlyArrayAcceptsCorrectingCodecAndScrubs) {
  // A CORRECTING codec on the read-only L1I: in-place correction scrubs
  // the array directly (no write() path, which would throw on the
  // read-only array) and fetch never degenerates to a refetch.
  const auto k = kernel_by_name("tblook").build();
  auto cfg = test::test_config(EccPolicy::kLaec);
  cfg.set_scheme("laec+l1i:secded-39-32:correct");
  ecc::InjectorConfig inj;
  inj.single_flip_prob = 0.001;
  inj.seed = 0xdead;
  cfg.faults = inj;
  cfg.inject_target = core::InjectTarget::kL1i;
  auto r = test::run_keep_system(cfg, k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.l1i_corrected, 0u) << "storm did not land any flips";
  EXPECT_EQ(r.stats.l1i_refetches, 0u)
      << "corrected words must not be refetched";
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

// ---------------------------------------------------------------------------
// Flip placement: check-bit strikes vs data-bit strikes, at array level.
// ---------------------------------------------------------------------------

mem::SetAssocCache secded_array(ecc::FaultInjector* inj) {
  mem::CacheConfig cfg;
  cfg.name = "dut";
  cfg.size_bytes = 1024;
  cfg.line_bytes = 32;
  cfg.ways = 2;
  cfg.codec = ecc::make_codec("secded-39-32");
  mem::SetAssocCache cache(cfg);
  cache.set_injector(inj);
  return cache;
}

TEST(FaultInjection, CheckBitFlipIsCorrectedWithDataUntouched) {
  // Codeword layout: bits [0,32) data, [32,39) check. A flip in the check
  // side-array must be reported corrected while the delivered word never
  // changed — and scrubbing must repair the stored check bits so the next
  // read is clean.
  ecc::FaultInjector inj;
  auto cache = secded_array(&inj);
  std::vector<u8> line(32, 0);
  line[0] = 0x78; line[1] = 0x56; line[2] = 0x34; line[3] = 0x12;
  cache.fill(0x40, line.data(), /*dirty=*/false);

  inj.script_flip(/*word_index=*/0x40 / 4, /*bit=*/35);
  auto r = cache.read(0x40, 4);
  EXPECT_EQ(r.check, ecc::CheckStatus::kCorrected);
  EXPECT_EQ(r.value, 0x12345678u);
  r = cache.read(0x40, 4);
  EXPECT_EQ(r.check, ecc::CheckStatus::kOk) << "scrub left the fault in";
  EXPECT_EQ(cache.stats().value("ecc_corrected"), 1u);
}

TEST(FaultInjection, DataBitFlipIsCorrectedBackToTheStoredValue) {
  ecc::FaultInjector inj;
  auto cache = secded_array(&inj);
  std::vector<u8> line(32, 0);
  line[4] = 0xef; line[5] = 0xbe; line[6] = 0xad; line[7] = 0xde;
  cache.fill(0x40, line.data(), /*dirty=*/false);

  inj.script_flip(/*word_index=*/0x44 / 4, /*bit=*/7);
  const auto r = cache.read(0x44, 4);
  EXPECT_EQ(r.check, ecc::CheckStatus::kCorrected);
  EXPECT_EQ(r.value, 0xdeadbeefu);
}

TEST(FaultInjection, ParityCheckBitFlipIsDetectedNotCorrected) {
  // Detect-only parity: a flipped parity bit (codeword bit 32) is
  // indistinguishable from a flipped data bit — flagged, never repaired.
  ecc::FaultInjector inj;
  mem::CacheConfig cfg;
  cfg.name = "dut";
  cfg.size_bytes = 1024;
  cfg.line_bytes = 32;
  cfg.ways = 2;
  cfg.codec = ecc::make_codec("parity-32");
  mem::SetAssocCache cache(cfg);
  cache.set_injector(&inj);
  std::vector<u8> line(32, 0x5a);
  cache.fill(0x80, line.data(), /*dirty=*/false);

  inj.script_flip(/*word_index=*/0x80 / 4, /*bit=*/32);
  const auto r = cache.read(0x80, 4);
  EXPECT_EQ(r.check, ecc::CheckStatus::kDetectedUncorrectable);
  EXPECT_EQ(cache.stats().value("ecc_detected_uncorrectable"), 1u);
}

TEST(FaultInjection, FaultFreeRunHasNoEvents) {
  const auto k = kernel_by_name("rspeed").build();
  auto r = test::run_keep_system(test::test_config(EccPolicy::kLaec),
                                 k.program);
  EXPECT_EQ(r.stats.ecc_corrected, 0u);
  EXPECT_EQ(r.stats.ecc_detected_uncorrectable, 0u);
  EXPECT_EQ(r.stats.parity_refetches, 0u);
}

}  // namespace
}  // namespace laec
