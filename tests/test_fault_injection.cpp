// End-to-end soft-error behaviour (DESIGN.md §6):
//  * SECDED WB DL1: injected single-bit flips are corrected transparently —
//    full-kernel results remain bit-exact;
//  * WT+parity DL1: flips are recovered by refetch from the clean L2 copy;
//  * double flips under SECDED raise detected-uncorrectable events.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"
#include "workloads/eembc.hpp"

namespace laec {
namespace {

using cpu::EccPolicy;
using workloads::kernel_by_name;

core::SimConfig faulty_config(EccPolicy ecc, double single, double dbl) {
  auto cfg = test::test_config(ecc);
  ecc::InjectorConfig inj;
  inj.single_flip_prob = single;
  inj.double_flip_prob = dbl;
  inj.seed = 0xdead;
  cfg.faults = inj;
  return cfg;
}

TEST(FaultInjection, SecdedKernelSurvivesSingleBitStorm) {
  const auto k = kernel_by_name("tblook").build();
  auto r = test::run_keep_system(faulty_config(EccPolicy::kLaec, 0.001, 0.0),
                                 k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.ecc_corrected, 0u) << "storm did not land any flips";
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

TEST(FaultInjection, ExtraStageAlsoCorrects) {
  const auto k = kernel_by_name("aifirf").build();
  auto r = test::run_keep_system(
      faulty_config(EccPolicy::kExtraStage, 0.001, 0.0), k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.ecc_corrected, 0u);
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

TEST(FaultInjection, WtParityRecoversByRefetch) {
  const auto k = kernel_by_name("canrdr").build();
  auto r = test::run_keep_system(
      faulty_config(EccPolicy::kWtParity, 0.001, 0.0), k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.parity_refetches, 0u);
  // WT keeps the L2 copy clean, so recovery is lossless.
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

TEST(FaultInjection, DoubleBitFlipsAreDetectedNotMiscorrected) {
  const auto k = kernel_by_name("puwmod").build();
  auto r = test::run_keep_system(
      faulty_config(EccPolicy::kLaec, 0.0, 0.0005), k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.ecc_detected_uncorrectable, 0u);
}

TEST(FaultInjection, UnprotectedCacheSilentlyCorrupts) {
  // Negative control: the same storm against a no-ECC DL1 must corrupt at
  // least one self-check — demonstrating why WB DL1 needs SECDED at all.
  const auto k = kernel_by_name("matrix").build();
  auto r = test::run_keep_system(faulty_config(EccPolicy::kNoEcc, 0.002, 0.0),
                                 k.program);
  ASSERT_TRUE(r.stats.completed);
  int mismatches = 0;
  for (const auto& [addr, expect] : k.expected) {
    mismatches += r.system->read_word_final(addr) != expect;
  }
  EXPECT_GT(mismatches, 0);
}

// ---------------------------------------------------------------------------
// Targeted injection: the same storm machinery aimed at the L1I or the L2.
// ---------------------------------------------------------------------------

TEST(FaultInjection, L1iTargetedStormRecoversByRefetch) {
  // Parity-protected instruction lines are always clean; every detected
  // flip recovers losslessly by invalidate-and-refetch.
  const auto k = kernel_by_name("tblook").build();
  auto cfg = faulty_config(EccPolicy::kLaec, 0.001, 0.0);
  cfg.inject_target = core::InjectTarget::kL1i;
  auto r = test::run_keep_system(cfg, k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.l1i_refetches, 0u) << "storm did not land any flips";
  EXPECT_EQ(r.stats.ecc_corrected, 0u) << "the DL1 was not the target";
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

TEST(FaultInjection, L2TargetedAdjacentStormSecDaecAtL2Corrects) {
  // Deploy SEC-DAEC at the L2 via a compound key and drive an adjacent
  // double-bit storm into the L2 array: every pair is corrected in place,
  // writebacks survive, results stay bit-exact. A tiny DL1 forces heavy
  // writeback/refill traffic through the L2.
  const auto k = kernel_by_name("matrix").build();
  auto cfg = test::test_config(EccPolicy::kLaec);
  cfg.set_scheme("laec+l2:sec-daec-39-32");
  cfg.dl1_size_bytes = 1024;
  ecc::InjectorConfig inj;
  inj.double_flip_prob = 0.002;
  inj.adjacent_doubles = true;
  inj.seed = 0xdead;
  cfg.faults = inj;
  cfg.inject_target = core::InjectTarget::kL2;
  auto r = test::run_keep_system(cfg, k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.l2_corrected_adjacent, 0u) << "storm missed the L2";
  EXPECT_EQ(r.stats.l2_data_loss_events, 0u);
  EXPECT_EQ(r.stats.ecc_corrected, 0u) << "the DL1 was not the target";
  for (const auto& [addr, expect] : k.expected) {
    ASSERT_EQ(r.system->read_word_final(addr), expect);
  }
}

TEST(FaultInjection, L2TargetedAdjacentStormSecdedOnlyDetects) {
  // The same storm against the default SECDED L2: adjacent pairs are DUEs.
  // Clean lines refetch losslessly; pairs landing on dirty writeback lines
  // are data-loss events — the gap fig9_hierarchy quantifies.
  const auto k = kernel_by_name("matrix").build();
  auto cfg = test::test_config(EccPolicy::kLaec);
  cfg.dl1_size_bytes = 1024;
  ecc::InjectorConfig inj;
  inj.double_flip_prob = 0.002;
  inj.adjacent_doubles = true;
  inj.seed = 0xdead;
  cfg.faults = inj;
  cfg.inject_target = core::InjectTarget::kL2;
  auto r = test::run_keep_system(cfg, k.program);
  ASSERT_TRUE(r.stats.completed);
  EXPECT_GT(r.stats.l2_detected_uncorrectable, 0u);
  EXPECT_GT(r.stats.l2_refetches, 0u);
  EXPECT_EQ(r.stats.l2_corrected_adjacent, 0u);
}

TEST(FaultInjection, FaultFreeRunHasNoEvents) {
  const auto k = kernel_by_name("rspeed").build();
  auto r = test::run_keep_system(test::test_config(EccPolicy::kLaec),
                                 k.program);
  EXPECT_EQ(r.stats.ecc_corrected, 0u);
  EXPECT_EQ(r.stats.ecc_detected_uncorrectable, 0u);
  EXPECT_EQ(r.stats.parity_refetches, 0u);
}

}  // namespace
}  // namespace laec
