// Simulation state snapshots: the frame save_system_state/restore_system_state
// round-trips the COMPLETE deterministic state of a sim::System, and the
// budgeted SnapshotStore thins deterministically.
//
// The fast-forward contract (sim/snapshot.hpp) says a snapshot taken by the
// golden run at consultation ordinal C is bit-identical to the state of any
// trial whose first delivery is at or after C. These tests pin the two
// halves of that claim: (1) restoring a blob into a freshly-constructed
// system and re-serializing reproduces the blob byte for byte — restore
// loses nothing save captured; (2) resuming from EVERY captured snapshot
// and running the suffix fault-free lands on exactly the golden run's final
// stats and architectural memory — save captures everything the suffix
// depends on. Corrupt, truncated, version-skewed and geometry-mismatched
// blobs must be rejected loudly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "ecc/injector.hpp"
#include "mem/residency.hpp"
#include "runner/sweep_runner.hpp"
#include "service/wire.hpp"
#include "sim/snapshot.hpp"
#include "sim/system.hpp"
#include "workloads/eembc.hpp"
#include "workloads/synthetic.hpp"

namespace laec::sim {
namespace {

core::SimConfig config_for(const std::string& scheme) {
  core::SimConfig cfg;
  cfg.set_scheme(scheme);
  cfg.dl1_size_bytes = 2 * 1024;
  return cfg;
}

struct Golden {
  core::SimConfig cfg;
  runner::PointResult result;
  std::unique_ptr<SnapshotStore> store;
};

/// One fault-free golden run of `workload` under `scheme`, capturing
/// snapshots every `every` injector consultations (unlimited budget).
Golden make_golden(const std::string& workload, const std::string& scheme,
                   u64 every) {
  Golden g;
  g.cfg = config_for(scheme);
  g.store = std::make_unique<SnapshotStore>(every, 0);
  runner::SweepPoint p;
  p.workload = workload;
  p.config = g.cfg;
  p.mode = runner::RunMode::kProgram;
  mem::ResidencyRecorder rec;
  g.result = runner::run_golden_point(p, 0x1aec, &rec, g.store.get());
  return g;
}

// ------------------------------------------------------------- tier 1 ----

TEST(Snapshot, RestoreReserializesByteIdenticalPerHierarchyKey) {
  // Restore into a system that never ran a cycle, then re-save: the bytes
  // must reproduce the blob exactly. Anything restore fails to apply (or
  // save fails to capture symmetrically) shows up as a byte diff. One
  // representative key per deployment shape: the paper's policy, a plain
  // codec, a wider codec, and a compound per-level hierarchy key.
  for (const std::string scheme :
       {"laec", "secded-39-32", "sec-daec-39-32", "laec+l2:sec-daec-39-32"}) {
    const Golden g = make_golden("puwmod", scheme, 2048);
    ASSERT_TRUE(g.result.stats.completed) << scheme;
    ASSERT_GE(g.store->size(), 2u) << scheme;
    for (const auto& e : g.store->entries()) {
      System fresh(core::make_system_config(g.cfg, /*trace_mode=*/false));
      restore_system_state(fresh, *e->blob);
      EXPECT_EQ(save_system_state(fresh), *e->blob)
          << scheme << " @ ordinal " << e->ordinal;
    }
  }
}

TEST(Snapshot, GoldenCaptureIsDeterministic) {
  const Golden a = make_golden("puwmod", "laec", 2048);
  const Golden b = make_golden("puwmod", "laec", 2048);
  ASSERT_EQ(a.store->size(), b.store->size());
  ASSERT_GE(a.store->size(), 2u);
  for (std::size_t i = 0; i < a.store->size(); ++i) {
    const auto& x = *a.store->entries()[i];
    const auto& y = *b.store->entries()[i];
    EXPECT_EQ(x.ordinal, y.ordinal) << i;
    EXPECT_EQ(x.cycle, y.cycle) << i;
    EXPECT_EQ(*x.blob, *y.blob) << i;
  }
}

TEST(Snapshot, ResumeFromEverySnapshotMatchesGoldenCompletion) {
  // The actual fast-forward soundness claim: restore at ordinal C, attach a
  // replay injector with an EMPTY schedule (the fault-free trial), run the
  // suffix — final stats and every architecturally-final word must equal
  // the golden run's. A single field missing from the frame diverges here.
  const Golden g = make_golden("puwmod", "laec", 2048);
  ASSERT_TRUE(g.result.stats.completed);
  ASSERT_GE(g.store->size(), 2u);

  core::SimConfig replay = g.cfg;
  ecc::InjectorConfig inj;
  inj.schedule = std::make_shared<ecc::TrialSchedule>();
  replay.faults = inj;

  const auto& built = workloads::kernel_by_name("puwmod").build();
  for (const auto& e : g.store->entries()) {
    auto r = core::run_program_resume(replay, *e->blob, e->ordinal);
    ASSERT_TRUE(r.stats.completed) << "ordinal " << e->ordinal;
    EXPECT_EQ(r.stats.cycles, g.result.stats.cycles) << e->ordinal;
    EXPECT_EQ(r.stats.instructions, g.result.stats.instructions) << e->ordinal;
    EXPECT_EQ(r.stats.loads, g.result.stats.loads) << e->ordinal;
    EXPECT_EQ(r.stats.load_hits, g.result.stats.load_hits) << e->ordinal;
    EXPECT_EQ(r.stats.bus_transactions, g.result.stats.bus_transactions)
        << e->ordinal;
    for (const auto& [addr, expect] : built.expected) {
      ASSERT_EQ(r.system->read_word_final(addr), expect)
          << "ordinal " << e->ordinal << " addr " << addr;
    }
  }
}

TEST(Snapshot, TraceDrivenSystemRoundTrips) {
  // The synthetic-trace workload class: tick a trace-mode system mid-run,
  // save, restore into a fresh system, re-save — byte-identical. (The trace
  // source itself is external to the system and not part of the frame.)
  core::SimConfig cfg = config_for("laec");
  workloads::SyntheticParams params;
  params.num_ops = 50'000;
  workloads::SyntheticTrace trace(params);
  System sys(core::make_system_config(cfg, /*trace_mode=*/true), &trace);
  for (int i = 0; i < 5'000; ++i) sys.tick();
  const std::string blob = save_system_state(sys);

  workloads::SyntheticTrace unused(params);
  System fresh(core::make_system_config(cfg, /*trace_mode=*/true), &unused);
  restore_system_state(fresh, blob);
  EXPECT_EQ(save_system_state(fresh), blob);
}

TEST(Snapshot, CorruptAndSkewedBlobsAreRejected) {
  const Golden g = make_golden("puwmod", "laec", 4096);
  ASSERT_GE(g.store->size(), 1u);
  const std::string good = *g.store->entries().front()->blob;
  const auto fresh = [&] {
    return System(core::make_system_config(g.cfg, /*trace_mode=*/false));
  };

  {  // bad magic
    std::string bad = good;
    bad[0] ^= 0x40;
    auto s = fresh();
    EXPECT_THROW(restore_system_state(s, bad), service::WireError);
  }
  {  // version skew (version field sits right after the 8-byte magic)
    std::string bad = good;
    bad[8] ^= 0x01;
    auto s = fresh();
    try {
      restore_system_state(s, bad);
      FAIL() << "version-skewed blob accepted";
    } catch (const service::WireError& err) {
      EXPECT_NE(std::string(err.what()).find("version"), std::string::npos);
    }
  }
  {  // payload corruption caught by the checksum
    std::string bad = good;
    bad[bad.size() / 2] ^= 0x10;
    auto s = fresh();
    try {
      restore_system_state(s, bad);
      FAIL() << "corrupt blob accepted";
    } catch (const service::WireError& err) {
      EXPECT_NE(std::string(err.what()).find("checksum"), std::string::npos);
    }
  }
  {  // truncation
    auto s = fresh();
    EXPECT_THROW(restore_system_state(s, std::string_view(good).substr(0, 16)),
                 service::WireError);
  }
}

TEST(Snapshot, GeometryMismatchIsRejected) {
  const Golden g = make_golden("puwmod", "laec", 4096);
  ASSERT_GE(g.store->size(), 1u);
  core::SimConfig other = g.cfg;
  other.dl1_size_bytes = 4 * 1024;
  System sys(core::make_system_config(other, /*trace_mode=*/false));
  EXPECT_THROW(restore_system_state(sys, *g.store->entries().front()->blob),
               service::WireError);
}

TEST(Snapshot, StoreThinsDeterministicallyUnderBudget) {
  // 300-byte blobs under a 1000-byte budget: the keep stride must double
  // exactly when the budget would overflow, survivors are the on-stride
  // capture sequence, and the surviving set depends only on that sequence.
  const auto build = [] {
    SnapshotStore s(/*every=*/1, /*budget_bytes=*/1000);
    u64 ordinal = 3;
    for (int i = 0; i < 8; ++i) {
      if (s.begin_capture()) {
        s.add(ordinal, ordinal * 10, std::string(300, 'x'));
      }
      ordinal += 5;
    }
    return s;
  };
  const SnapshotStore s = build();
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.stride(), 4u);
  EXPECT_EQ(s.bytes(), 600u);
  ASSERT_EQ(s.entries().size(), 2u);
  EXPECT_EQ(s.entries()[0]->ordinal, 3u);   // capture seq 0
  EXPECT_EQ(s.entries()[1]->ordinal, 23u);  // capture seq 4

  EXPECT_EQ(s.best_at_or_before(2), nullptr);
  EXPECT_EQ(s.best_at_or_before(3)->ordinal, 3u);
  EXPECT_EQ(s.best_at_or_before(22)->ordinal, 3u);
  EXPECT_EQ(s.best_at_or_before(23)->ordinal, 23u);
  EXPECT_EQ(s.best_at_or_before(~u64{0})->ordinal, 23u);

  // Determinism: an identical capture sequence reproduces the store.
  const SnapshotStore t = build();
  ASSERT_EQ(t.size(), s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(t.entries()[i]->ordinal, s.entries()[i]->ordinal);
  }
}

}  // namespace
}  // namespace laec::sim
