#include "ecc/xor_tree.hpp"

#include <gtest/gtest.h>

namespace laec::ecc {
namespace {

TEST(XorTree, EncoderCosts32) {
  const auto g = estimate_encoder(secded32());
  // 7 rows, each covering a balanced share of 32 odd-weight-column bits
  // (total column weight = sum of popcounts >= 3*32 = 96 -> ~14 per row).
  EXPECT_GE(g.xor2_gates, 7u * (10 - 1));
  EXPECT_LE(g.depth_levels, 5u);  // ceil(log2(~16))
  EXPECT_GE(g.depth_levels, 4u);
}

TEST(XorTree, CheckerDeeperThanEncoder) {
  const auto enc = estimate_encoder(secded32());
  const auto chk = estimate_checker(secded32());
  EXPECT_GT(chk.depth_levels, enc.depth_levels);
  EXPECT_GT(chk.total_gates(), enc.total_gates());
}

TEST(XorTree, ParityShallowerThanSecded) {
  // The architectural point of Table I: parity is cheap enough for the hit
  // path, SECDED is not — hence the paper's schemes.
  const auto par = estimate_parity(32);
  const auto sec = estimate_checker(secded32());
  EXPECT_LT(par.depth_levels, sec.depth_levels);
  EXPECT_LT(par.total_gates(), sec.total_gates());
}

TEST(XorTree, DelayScalesWithLevels) {
  GateEstimate g;
  g.depth_levels = 10;
  EXPECT_DOUBLE_EQ(estimate_delay_ps(g, 35.0), 350.0);
  EXPECT_DOUBLE_EQ(estimate_delay_ps(g, 20.0), 200.0);
}

TEST(XorTree, SecdedCheckFitsInOneCycleAt150MHz) {
  // Supports the paper's premise (§II.B item 3, refs [13][18]): a SECDED
  // check is shorter than a full DL1 access but too long to *append* to it
  // within the same cycle at the LEON4's 150 MHz once array access time is
  // accounted for.
  const auto chk = estimate_checker(secded32());
  const double ps = estimate_delay_ps(chk);
  EXPECT_LT(ps, 1e6 / 150.0 * 1e3 / 2);  // < half a 150 MHz cycle
}

TEST(XorTree, WiderCodesCostMore) {
  EXPECT_GT(estimate_checker(secded64()).total_gates(),
            estimate_checker(secded32()).total_gates());
  EXPECT_GT(estimate_encoder(secded32()).total_gates(),
            estimate_encoder(secded16()).total_gates());
}

}  // namespace
}  // namespace laec::ecc
